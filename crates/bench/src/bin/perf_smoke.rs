//! Engine performance smoke test: wall-clock timing of a pinned
//! simulator configuration set, tracked across PRs in `BENCH_sim.json`.
//!
//! Usage:
//!   `perf_smoke [--quick] [--repeat N] [--tag LABEL] [--out PATH] [--no-write]`
//!
//! The pinned set is `sf:q=19` (N = 10 830 endpoints, the paper-size
//! network) × routings {`min`, `ugal-g:c=4`} × offered loads
//! {0.1, 0.3, 0.5} with a short warm-up/measure/drain window — enough
//! cycles to exercise every hot phase (injection, allocation, ejection,
//! credits, UGAL-G's global occupancy scans) while finishing in
//! seconds. `--quick` substitutes `sf:q=7` (~500 endpoints) for CI.
//!
//! Every run appends one entry to `BENCH_sim.json` (repo root by
//! default; `--out` overrides, `--no-write` skips persistence). Entries
//! accumulate across PRs, so the file is the engine's performance
//! trajectory; each entry also records its speedup versus the *first*
//! entry in the file (the pre-CSR-engine baseline).
//!
//! The headline cells are strictly sequential and single-threaded so
//! cycles/sec is an engine metric, not a parallelism metric. `--repeat
//! N` (default 3) runs every cell N times and reports the fastest wall
//! time — the standard guard against scheduler noise on shared
//! machines; the simulated results are identical across repeats (same
//! seed), only timing varies.
//!
//! A **wormhole section** re-times the same pinned cells at
//! `packet_size = 4` and appends a `{tag}-pkt4` entry (topo key
//! `…,pkt=4`, so it never mixes with the single-flit baseline): the
//! multi-flit path's cost is tracked alongside the classic engine on
//! every run, including `--quick` in CI.
//!
//! A **fault section** re-times the same cells on a boot-degraded
//! network (2% of cables killed by the seeded kill-set sampler) and
//! appends a `{tag}-faults` entry (topo key `…,faults=0.02`), so the
//! degraded-routing path's cost is tracked on every run too.
//!
//! A **shards section** re-times the same pinned cells with the
//! engine's intra-simulation threads at `N = max(2,
//! available_parallelism)` and appends a `{tag}-shards` entry recording
//! `available_parallelism` honestly: on a multi-core machine the entry
//! shows the sharded engine's speedup, on a 1-core container it shows
//! the measured barrier/outbox overhead of running two engine threads
//! on one core — either way the sharded code path is exercised and the
//! per-cell results are asserted identical to the `threads = 1` cells
//! (engine output is thread-count independent by contract).
//!
//! A second section then times the **work-stealing scheduler** on the
//! same pinned sweep — a heterogeneous job mix (low loads drain almost
//! instantly, the 0.5 UGAL-G point dominates) — once with a single
//! worker and once with `--workers N` (default 4, or the machine's
//! parallelism if larger), asserting both record streams are
//! byte-identical and appending a `workers=N` speedup entry to
//! `BENCH_sim.json`. `--seq-only` skips this section.
//!
//! A **cache section** times the pinned sweep through the scheduler
//! with a persistent content-addressed result cache
//! (`slimfly::cache`): once cold (all-miss — simulate and write
//! through) and once warm (all-hit — replay stored records). The
//! record streams are asserted byte-identical, and the `{tag}-cache`
//! entry records the hit counts of both runs honestly alongside the
//! replay speedup. On a full (non-`--quick`) run the same cold/warm
//! comparison additionally covers the whole `figures/fig8.toml` plan
//! (`{tag}-cache-fig8`) — the figure-regeneration loop the cache
//! exists for.

use sf_bench::{print_raw_line, run_cli};
use slimfly::prelude::*;
use slimfly::SfError;
use std::time::Instant;

/// One timed (routing, load) cell.
struct Cell {
    routing: String,
    load: f64,
    wall_ms: f64,
    cycles: u64,
    packets: u64,
}

fn pinned_cfg() -> SimConfig {
    SimConfig {
        warmup: 150,
        measure: 300,
        drain: 450,
        ..Default::default()
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".into()
    }
}

/// JSON string escaping for interpolated fields (tags are user input;
/// an unescaped quote would corrupt BENCH_sim.json permanently).
fn json_s(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn entry_json(tag: &str, topo: &str, cells: &[Cell], speedup_vs_first: Option<f64>) -> String {
    let total_ms: f64 = cells.iter().map(|c| c.wall_ms).sum();
    let total_cycles: u64 = cells.iter().map(|c| c.cycles).sum();
    let total_packets: u64 = cells.iter().map(|c| c.packets).sum();
    let secs = (total_ms / 1e3).max(1e-12);
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut rows = String::new();
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        let cs = (c.wall_ms / 1e3).max(1e-12);
        rows.push_str(&format!(
            "        {{\"routing\": {}, \"load\": {}, \"wall_ms\": {}, \
             \"cycles\": {}, \"cycles_per_sec\": {}, \"packets\": {}, \
             \"packets_per_sec\": {}}}",
            json_s(&c.routing),
            c.load,
            json_f(c.wall_ms),
            c.cycles,
            json_f(c.cycles as f64 / cs),
            c.packets,
            json_f(c.packets as f64 / cs),
        ));
    }
    // `None` = no comparable baseline (e.g. a --quick run against a
    // full-size history): record null, never a fabricated ratio.
    let speedup = speedup_vs_first
        .map(json_f)
        .unwrap_or_else(|| "null".into());
    format!(
        "    {{\n      \"tag\": {},\n      \"topo\": {},\n      \
         \"unix_time\": {unix_time},\n      \"total_wall_ms\": {},\n      \
         \"total_cycles\": {total_cycles},\n      \"cycles_per_sec\": {},\n      \
         \"packets_per_sec\": {},\n      \"speedup_vs_first\": {speedup},\n      \
         \"configs\": [\n{rows}\n      ]\n    }}",
        json_s(tag),
        json_s(topo),
        json_f(total_ms),
        json_f(total_cycles as f64 / secs),
        json_f(total_packets as f64 / secs),
    )
}

/// One flow-backend timing entry: the pinned sweep through the max-min
/// fair-share tier, end to end (demand lowering + solve + records).
/// Its own topo key (`…,backend=flow`) keeps it out of the cycle-engine
/// baseline comparisons.
fn flow_entry_json(tag: &str, topo: &str, wall_ms: f64, records: usize) -> String {
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    format!(
        "    {{\n      \"tag\": {},\n      \"topo\": {},\n      \
         \"unix_time\": {unix_time},\n      \"total_wall_ms\": {},\n      \
         \"records\": {records},\n      \"configs\": []\n    }}",
        json_s(tag),
        json_s(topo),
        json_f(wall_ms),
    )
}

/// One scheduler-timing entry: the pinned sweep through the
/// work-stealing scheduler with one worker vs `workers` workers.
fn sched_entry_json(tag: &str, topo: &str, workers: usize, wall1_ms: f64, walln_ms: f64) -> String {
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    format!(
        "    {{\n      \"tag\": {},\n      \"topo\": {},\n      \
         \"unix_time\": {unix_time},\n      \"workers\": {workers},\n      \
         \"available_parallelism\": {hw},\n      \
         \"sched_wall_ms_workers1\": {},\n      \
         \"sched_wall_ms_workersN\": {},\n      \
         \"sched_speedup\": {},\n      \"configs\": []\n    }}",
        json_s(tag),
        json_s(topo),
        json_f(wall1_ms),
        json_f(walln_ms),
        json_f(wall1_ms / walln_ms.max(1e-12)),
    )
}

/// One sharded-engine timing entry: the pinned cells with
/// `threads = 1` vs `threads = N` inside the simulator. Records the
/// machine's available parallelism so a 1-core container's overhead
/// numbers are never mistaken for a multi-core speedup.
fn shards_entry_json(
    tag: &str,
    topo: &str,
    threads: usize,
    wall1_ms: f64,
    walln_ms: f64,
) -> String {
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    format!(
        "    {{\n      \"tag\": {},\n      \"topo\": {},\n      \
         \"unix_time\": {unix_time},\n      \"threads\": {threads},\n      \
         \"available_parallelism\": {hw},\n      \
         \"shard_wall_ms_threads1\": {},\n      \
         \"shard_wall_ms_threadsN\": {},\n      \
         \"shard_speedup\": {},\n      \"configs\": []\n    }}",
        json_s(tag),
        json_s(topo),
        json_f(wall1_ms),
        json_f(walln_ms),
        json_f(wall1_ms / walln_ms.max(1e-12)),
    )
}

/// One result-cache timing entry: a sweep run cold (all-miss —
/// simulate + write through) vs warm (all-hit — replay) through the
/// scheduler with a fresh cache directory. `warm_hits`/`warm_misses`
/// are the warm run's actual counters, recorded honestly: a warm run
/// that failed to all-hit would show it here.
fn cache_entry_json(
    tag: &str,
    topo: &str,
    jobs: usize,
    warm_hits: usize,
    warm_misses: usize,
    cold_ms: f64,
    warm_ms: f64,
) -> String {
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    format!(
        "    {{\n      \"tag\": {},\n      \"topo\": {},\n      \
         \"unix_time\": {unix_time},\n      \"jobs\": {jobs},\n      \
         \"warm_hits\": {warm_hits},\n      \"warm_misses\": {warm_misses},\n      \
         \"cache_wall_ms_cold\": {},\n      \
         \"cache_wall_ms_warm\": {},\n      \
         \"cache_replay_speedup\": {},\n      \"configs\": []\n    }}",
        json_s(tag),
        json_s(topo),
        json_f(cold_ms),
        json_f(warm_ms),
        json_f(cold_ms / warm_ms.max(1e-12)),
    )
}

/// First entry's `total_wall_ms` in an existing BENCH_sim.json — the
/// baseline every later entry is compared against — provided that
/// entry ran the same pinned topology (a `--quick` run must not be
/// compared against, or poison, the full-size baseline). The file is
/// only ever written by this binary, so a plain scan of the known
/// layout is sufficient (no JSON parser in the workspace).
fn first_total_ms(existing: &str, topo: &str) -> Option<f64> {
    let topo_key = "\"topo\": \"";
    let at = existing.find(topo_key)? + topo_key.len();
    let first_topo = &existing[at..at + existing[at..].find('"')?];
    if first_topo != topo {
        return None;
    }
    let key = "\"total_wall_ms\": ";
    let at = existing.find(key)? + key.len();
    let rest = &existing[at..];
    let end = rest.find([',', '\n'])?;
    rest[..end].trim().parse().ok()
}

fn append_entry(path: &str, entry: &str) -> Result<(), SfError> {
    let updated = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let suffix = "\n  ]\n}\n";
            match existing.strip_suffix(suffix) {
                Some(head) => format!("{head},\n{entry}{suffix}"),
                None => {
                    return Err(SfError::Experiment(format!(
                        "{path} exists but does not end with the perf_smoke \
                         entry-list suffix; refusing to rewrite it"
                    )))
                }
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            format!("{{\n  \"benchmark\": \"perf_smoke\",\n  \"entries\": [\n{entry}\n  ]\n}}\n")
        }
        Err(e) => return Err(e.into()),
    };
    std::fs::write(path, updated)?;
    Ok(())
}

fn main() {
    run_cli(|args| {
        let quick = args.flag("quick");
        let repeat: usize = args.value("repeat", 3)?;
        let repeat = repeat.max(1);
        let tag: String = args.value("tag", "dev".to_string())?;
        let out: String = args.value("out", "BENCH_sim.json".to_string())?;
        let no_write = args.flag("no-write");
        let topo = if quick { "sf:q=7" } else { "sf:q=19" };
        let routings = ["min", "ugal-g:c=4"];
        let loads = [0.1, 0.3, 0.5];
        let cfg = pinned_cfg();

        let spec: TopologySpec = topo.parse()?;
        let net = spec.build()?;
        let tables = RoutingTables::new(&net.graph);
        let pattern = TrafficSpec::Uniform.build(&net, &tables)?;

        print_raw_line(&format!(
            "perf_smoke: {} ({} endpoints, {} routers)",
            net.name,
            net.num_endpoints(),
            net.num_routers()
        ));
        // One timing harness for both the single-flit baseline and the
        // wormhole section: min-of-`repeat` wall time per (routing,
        // load) cell, identical seed derivation, one throughput column
        // (packets for size 1, flits otherwise — same unit as the
        // offered load only in the flit case by coincidence; the
        // column header says which).
        let time_cells = |net: &Network,
                          tables: &RoutingTables,
                          pattern: &TrafficPattern,
                          cfg: SimConfig|
         -> Result<Vec<Cell>, SfError> {
            let unit = if cfg.packet_size == 1 {
                "packets"
            } else {
                "flits"
            };
            print_raw_line(&format!(
                "routing,load,wall_ms,cycles,cycles_per_sec,{unit},{unit}_per_sec"
            ));
            let mut cells = Vec::new();
            for rspec in routings {
                let parsed: RoutingSpec = rspec.parse()?;
                let router = parsed.build(&net.graph, tables)?;
                for &load in &loads {
                    let mut c = cfg;
                    c.seed = LoadSweep::seed_for_load(&cfg, load);
                    let mut wall_ms = f64::INFINITY;
                    let mut res = None;
                    for _ in 0..repeat {
                        let t0 = Instant::now();
                        let r =
                            sf_sim::Simulator::new(net, tables, router.as_ref(), pattern, load, c)
                                .run();
                        wall_ms = wall_ms.min(t0.elapsed().as_secs_f64() * 1e3);
                        res = Some(r);
                    }
                    let res = res.unwrap();
                    let moved = if cfg.packet_size == 1 {
                        res.ejected
                    } else {
                        res.ejected_flits
                    };
                    let secs = (wall_ms / 1e3).max(1e-12);
                    print_raw_line(&format!(
                        "{},{load},{:.1},{},{:.0},{moved},{:.0}",
                        router.label(),
                        wall_ms,
                        res.cycles,
                        res.cycles as f64 / secs,
                        moved as f64 / secs,
                    ));
                    cells.push(Cell {
                        routing: router.label(),
                        load,
                        wall_ms,
                        cycles: res.cycles as u64,
                        packets: res.ejected,
                    });
                }
            }
            Ok(cells)
        };

        let cells = time_cells(&net, &tables, &pattern, cfg)?;
        let total_ms: f64 = cells.iter().map(|c| c.wall_ms).sum();
        print_raw_line(&format!("total wall: {total_ms:.1} ms"));

        // Wormhole section: the same pinned cells at packet_size = 4,
        // so the multi-flit path's cost is tracked alongside the
        // single-flit baseline on every run (including --quick in CI).
        // The entry records its own topo key ("…,pkt=4"), so it never
        // poisons, or is compared against, the single-flit baseline.
        let pkt_size = 4usize;
        let mut pcfg = cfg;
        pcfg.packet_size = pkt_size;
        print_raw_line(&format!("packet_size={pkt_size} (wormhole path):"));
        let pkt_cells = time_cells(&net, &tables, &pattern, pcfg)?;
        let pkt_total: f64 = pkt_cells.iter().map(|c| c.wall_ms).sum();
        print_raw_line(&format!(
            "packet_size={pkt_size} total wall: {pkt_total:.1} ms \
             ({:.2}x the single-flit cells)",
            pkt_total / total_ms.max(1e-12)
        ));

        // Fault-mode section: the same pinned cells on a boot-degraded
        // network (2% of cables killed, seed 7, random — the FaultPlan
        // defaults), tracking the degraded-routing path's cost on
        // every run. Its own topo key ("…,faults=0.02") keeps it out
        // of the intact baseline comparisons.
        let fault_frac = 0.02;
        let kill = slimfly::graph::fault::kill_set(
            &net.graph,
            fault_frac,
            0.0,
            7,
            slimfly::graph::fault::FaultMode::Random,
        );
        let fnet = net
            .degrade(&kill, &format!(" [faults l={fault_frac} r=0 s=7 random]"))
            .map_err(|e| SfError::Experiment(e.to_string()))?;
        let ftables = RoutingTables::new(&fnet.graph);
        let fpattern = TrafficSpec::Uniform.build(&fnet, &ftables)?;
        print_raw_line(&format!(
            "faults={fault_frac} ({} cables dead, degraded routing):",
            kill.links.len()
        ));
        let fault_cells = time_cells(&fnet, &ftables, &fpattern, cfg)?;
        let fault_total: f64 = fault_cells.iter().map(|c| c.wall_ms).sum();
        print_raw_line(&format!(
            "faults={fault_frac} total wall: {fault_total:.1} ms \
             ({:.2}x the intact cells)",
            fault_total / total_ms.max(1e-12)
        ));

        // Sharded-engine section: the same pinned cells with the
        // engine's own threads at N = max(2, available_parallelism) —
        // the sharded path is exercised even on a 1-core container,
        // where the "speedup" is a measured overhead and is recorded
        // as such (the entry carries available_parallelism). The
        // simulated results must match the threads=1 cells exactly:
        // engine output is thread-count independent by contract.
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let engine_threads = hw.max(2);
        let mut scfg = cfg;
        scfg.threads = engine_threads;
        print_raw_line(&format!(
            "threads={engine_threads} (sharded engine, {hw} core(s) available):"
        ));
        let shard_cells = time_cells(&net, &tables, &pattern, scfg)?;
        let shard_total: f64 = shard_cells.iter().map(|c| c.wall_ms).sum();
        for (a, b) in cells.iter().zip(&shard_cells) {
            if (a.cycles, a.packets) != (b.cycles, b.packets) {
                return Err(SfError::Experiment(format!(
                    "sharded engine diverged from threads=1 at {} load {}: \
                     {} cycles / {} packets vs {} / {}",
                    a.routing, a.load, b.cycles, b.packets, a.cycles, a.packets
                )));
            }
        }
        print_raw_line(&format!(
            "threads={engine_threads} total wall: {shard_total:.1} ms \
             ({:.2}x vs threads=1, results identical)",
            total_ms / shard_total.max(1e-12)
        ));

        // Flow-backend section: the same routings × loads through the
        // max-min fair-share tier. A fresh JobSet per repeat so the
        // OnceLock lowering caches don't turn later repeats into
        // no-ops; network construction is excluded (prepare runs
        // before the clock starts).
        let flow_plan = slimfly::ExperimentPlan {
            name: "perf_smoke_flow".into(),
            title: None,
            sweeps: vec![slimfly::SweepPlan {
                topos: vec![spec.clone()],
                routings: routings
                    .iter()
                    .map(|r| r.parse::<RoutingSpec>())
                    .collect::<Result<_, _>>()?,
                traffic: TrafficSpec::Uniform,
                loads: loads.to_vec(),
                sim: cfg,
                backend: Backend::Flow,
                warm_start: false,
                faults: None,
            }],
        };
        let mut flow_wall = f64::INFINITY;
        let mut flow_records = 0usize;
        for _ in 0..repeat {
            let mut fset = flow_plan.expand()?;
            fset.prepare()?;
            let mut sink = MemorySink::new();
            let t0 = Instant::now();
            Scheduler::new(1).run(&mut fset, &mut sink)?;
            flow_wall = flow_wall.min(t0.elapsed().as_secs_f64() * 1e3);
            flow_records = sink.records().len();
        }
        print_raw_line(&format!(
            "flow backend: {flow_records} records in {flow_wall:.1} ms \
             ({:.0}x the cycle cells)",
            total_ms / flow_wall.max(1e-12)
        ));

        // Scheduler section: the same heterogeneous sweep as one
        // work-stealing JobSet, workers=1 vs workers=N (prepare —
        // topology + tables — excluded from both timings).
        let seq_only = args.flag("seq-only");
        let workers: usize = args.value(
            "workers",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(4),
        )?;
        let mut sched_walls: Option<(f64, f64)> = None;
        if !seq_only {
            let plan = slimfly::ExperimentPlan {
                name: "perf_smoke".into(),
                title: None,
                sweeps: vec![slimfly::SweepPlan {
                    topos: vec![spec.clone()],
                    routings: routings
                        .iter()
                        .map(|r| r.parse::<RoutingSpec>())
                        .collect::<Result<_, _>>()?,
                    traffic: TrafficSpec::Uniform,
                    loads: loads.to_vec(),
                    sim: cfg,
                    backend: Backend::Cycle,
                    warm_start: false,
                    faults: None,
                }],
            };
            let mut set = plan.expand()?;
            set.prepare()?;
            let mut time_run = |n: usize| -> Result<(f64, Vec<String>), SfError> {
                let mut best = f64::INFINITY;
                let mut rows = Vec::new();
                for _ in 0..repeat {
                    let mut sink = MemorySink::new();
                    let t0 = Instant::now();
                    Scheduler::new(n).run(&mut set, &mut sink)?;
                    best = best.min(t0.elapsed().as_secs_f64() * 1e3);
                    rows = sink.records().iter().map(|r| r.to_csv()).collect();
                }
                Ok((best, rows))
            };
            let (wall1, rows1) = time_run(1)?;
            let (walln, rowsn) = time_run(workers)?;
            if rows1 != rowsn {
                return Err(SfError::Experiment(
                    "scheduler record stream changed with the worker count".into(),
                ));
            }
            print_raw_line(&format!(
                "scheduler: workers=1 {wall1:.1} ms, workers={workers} {walln:.1} ms \
                 ({:.2}x, {} jobs)",
                wall1 / walln.max(1e-12),
                set.jobs().len(),
            ));
            sched_walls = Some((wall1, walln));
        }

        // Result-cache section: the pinned sweep through the scheduler
        // with a persistent content-addressed cache, cold (all-miss)
        // vs warm (all-hit replay). Prepare (topology + tables) is
        // excluded from both timings; the cache is cleared between
        // cold repeats so every cold measurement really simulates.
        let cache_dir = std::env::temp_dir().join(format!("sf-perf-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cache_dir);
        let time_cached = |plan: &ExperimentPlan,
                           reps: usize|
         -> Result<(f64, f64, usize, usize, usize), SfError> {
            let cache = ResultCache::open(&cache_dir)?;
            let mut set = plan.expand()?;
            set.prepare()?;
            let (mut cold, mut warm) = (f64::INFINITY, f64::INFINITY);
            let (mut jobs, mut warm_hits, mut warm_misses) = (0usize, 0usize, 0usize);
            let (mut cold_rows, mut warm_rows) = (Vec::new(), Vec::new());
            for _ in 0..reps {
                cache.clear()?;
                let mut sink = MemorySink::new();
                let t0 = Instant::now();
                let rep = Scheduler::new(1)
                    .with_cache(Some(cache.clone()))
                    .run(&mut set, &mut sink)?;
                cold = cold.min(t0.elapsed().as_secs_f64() * 1e3);
                jobs = rep.jobs;
                if rep.cache_hits != 0 || rep.cache_store_errors != 0 {
                    return Err(SfError::Experiment(format!(
                        "cold cache run: expected 0 hits / 0 store errors, got {} / {}",
                        rep.cache_hits, rep.cache_store_errors
                    )));
                }
                cold_rows = sink
                    .records()
                    .iter()
                    .map(|r| r.to_csv())
                    .collect::<Vec<_>>();
                let mut sink = MemorySink::new();
                let t0 = Instant::now();
                let rep = Scheduler::new(1)
                    .with_cache(Some(cache.clone()))
                    .run(&mut set, &mut sink)?;
                warm = warm.min(t0.elapsed().as_secs_f64() * 1e3);
                warm_hits = rep.cache_hits;
                warm_misses = rep.cache_misses;
                warm_rows = sink
                    .records()
                    .iter()
                    .map(|r| r.to_csv())
                    .collect::<Vec<_>>();
            }
            if cold_rows != warm_rows {
                return Err(SfError::Experiment(
                    "cache replay diverged from the cold record stream".into(),
                ));
            }
            Ok((cold, warm, jobs, warm_hits, warm_misses))
        };
        let cache_plan = slimfly::ExperimentPlan {
            name: "perf_smoke_cache".into(),
            title: None,
            sweeps: vec![slimfly::SweepPlan {
                topos: vec![spec.clone()],
                routings: routings
                    .iter()
                    .map(|r| r.parse::<RoutingSpec>())
                    .collect::<Result<_, _>>()?,
                traffic: TrafficSpec::Uniform,
                loads: loads.to_vec(),
                sim: cfg,
                backend: Backend::Cycle,
                warm_start: false,
                faults: None,
            }],
        };
        let (cache_cold, cache_warm, cache_jobs, cache_hits, cache_misses) =
            time_cached(&cache_plan, repeat)?;
        print_raw_line(&format!(
            "cache: cold {cache_cold:.1} ms, warm {cache_warm:.1} ms \
             ({:.0}x replay speedup, {cache_hits}/{cache_jobs} warm hits)",
            cache_cold / cache_warm.max(1e-12),
        ));
        // Full runs only: the acceptance-scale demonstration — the
        // whole fig8 figure cold vs warm through the cache.
        let mut fig8_cache: Option<(f64, f64, usize, usize, usize)> = None;
        if !quick {
            let fig8 = std::path::Path::new("figures/fig8.toml");
            if fig8.exists() {
                let plan8 = ExperimentPlan::from_path(fig8)?;
                let stats = time_cached(&plan8, 1)?;
                print_raw_line(&format!(
                    "cache fig8: cold {:.1} ms, warm {:.1} ms \
                     ({:.0}x replay speedup, {}/{} warm hits)",
                    stats.0,
                    stats.1,
                    stats.0 / stats.1.max(1e-12),
                    stats.3,
                    stats.2,
                ));
                fig8_cache = Some(stats);
            } else {
                print_raw_line("cache fig8: figures/fig8.toml not found — skipped");
            }
        }
        let _ = std::fs::remove_dir_all(&cache_dir);

        if no_write {
            return Ok(());
        }
        let existing = std::fs::read_to_string(&out).ok();
        let speedup = match existing.as_deref() {
            // No history yet: this entry becomes the baseline (1.0 by
            // definition). Otherwise compare only against a same-topo
            // first entry; a mismatch records null.
            None => Some(1.0),
            Some(text) => first_total_ms(text, topo).map(|b| b / total_ms),
        };
        if let Some(s) = speedup.filter(|_| existing.is_some()) {
            print_raw_line(&format!("speedup vs first recorded entry: {s:.2}x"));
        }
        let entry = entry_json(&tag, topo, &cells, speedup);
        append_entry(&out, &entry)?;
        print_raw_line(&format!("appended entry '{tag}' to {out}"));
        // Wormhole-path entry: its own topo key, compared only against
        // earlier pkt entries by eye (speedup_vs_first stays null).
        let entry = entry_json(
            &format!("{tag}-pkt{pkt_size}"),
            &format!("{topo},pkt={pkt_size}"),
            &pkt_cells,
            None,
        );
        append_entry(&out, &entry)?;
        print_raw_line(&format!("appended entry '{tag}-pkt{pkt_size}' to {out}"));
        // Fault-mode entry: its own topo key, never compared against
        // the intact baseline (speedup_vs_first stays null).
        let entry = entry_json(
            &format!("{tag}-faults"),
            &format!("{topo},faults={fault_frac}"),
            &fault_cells,
            None,
        );
        append_entry(&out, &entry)?;
        print_raw_line(&format!("appended entry '{tag}-faults' to {out}"));
        // Sharded-engine entry: threads=1 vs threads=N on the same
        // cells, with available_parallelism recorded so the ratio is
        // read in context (1-core containers measure overhead, not
        // speedup).
        let entry = shards_entry_json(
            &format!("{tag}-shards"),
            &format!("{topo},threads={engine_threads}"),
            engine_threads,
            total_ms,
            shard_total,
        );
        append_entry(&out, &entry)?;
        print_raw_line(&format!("appended entry '{tag}-shards' to {out}"));
        let entry = flow_entry_json(
            &format!("{tag}-flow"),
            &format!("{topo},backend=flow"),
            flow_wall,
            flow_records,
        );
        append_entry(&out, &entry)?;
        print_raw_line(&format!("appended entry '{tag}-flow' to {out}"));
        if let Some((wall1, walln)) = sched_walls {
            let entry = sched_entry_json(&format!("{tag}-sched"), topo, workers, wall1, walln);
            append_entry(&out, &entry)?;
            print_raw_line(&format!("appended entry '{tag}-sched' to {out}"));
        }
        // Result-cache entries: cold vs warm with honest hit counts
        // (their own topo keys keep them out of baseline comparisons).
        let entry = cache_entry_json(
            &format!("{tag}-cache"),
            &format!("{topo},cache"),
            cache_jobs,
            cache_hits,
            cache_misses,
            cache_cold,
            cache_warm,
        );
        append_entry(&out, &entry)?;
        print_raw_line(&format!("appended entry '{tag}-cache' to {out}"));
        if let Some((c8, w8, j8, h8, m8)) = fig8_cache {
            let entry = cache_entry_json(
                &format!("{tag}-cache-fig8"),
                "fig8.toml,cache",
                j8,
                h8,
                m8,
                c8,
                w8,
            );
            append_entry(&out, &entry)?;
            print_raw_line(&format!("appended entry '{tag}-cache-fig8' to {out}"));
        }
        Ok(())
    })
}
