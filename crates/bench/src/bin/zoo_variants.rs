//! §VII-A: the library of practical topologies — every balanced Slim Fly
//! configuration up to a size budget, vs the count of balanced
//! Dragonflies (paper: 11 SF vs 8 DF below 20,000 endpoints).
//!
//! Usage: `zoo_variants [--max 20000]`
//! Output: CSV `spec,q,delta,kprime,p,k,routers,endpoints`, then DF
//! counts.

use sf_bench::{print_csv_row, run_cli};
use slimfly::prelude::*;

fn main() {
    run_cli(|args| {
        let max: u64 = args.value("max", 20_000)?;

        print_csv_row(&[
            "spec".into(),
            "q".into(),
            "delta".into(),
            "kprime".into(),
            "p".into(),
            "k".into(),
            "routers".into(),
            "endpoints".into(),
        ]);
        let sf = zoo::balanced_slimflies_up_to(max);
        for c in &sf {
            print_csv_row(&[
                TopologySpec::slimfly(c.q).to_string(),
                c.q.to_string(),
                c.delta.to_string(),
                c.k_prime.to_string(),
                c.p.to_string(),
                c.k.to_string(),
                c.nr.to_string(),
                c.n.to_string(),
            ]);
        }
        let df = zoo::balanced_dragonflies_up_to(max);
        eprintln!(
            "# {} balanced SF variants ≤ {max} endpoints ({} with q ≥ 4; paper: 11); \
             {} balanced DF variants (paper: 8)",
            sf.len(),
            sf.iter().filter(|c| c.q >= 4).count(),
            df.len()
        );
        Ok(())
    })
}
