//! Figures 8b–8e: oversubscribed Slim Fly networks — latency and
//! accepted bandwidth for concentrations above the balanced p (§V-E).
//!
//! A thin wrapper over the checked-in `figures/fig8.toml` experiment
//! file (`sf-bench run figures/fig8.toml` executes it unmodified). The
//! file's first two sweeps — a (uniform, worst) pair on the balanced
//! concentration — serve as the template; flags re-instantiate that
//! pair per requested concentration:
//!
//! Usage: `fig8_oversub [--large] [--concentrations 15,16,18]
//!                      [--routing min,val,ugal-l:c=4,ugal-g:c=4]
//!                      [--packet-size 4] [--backend cycle|flow]
//!                      [--workers N]`
//! Output: the shared experiment-record CSV schema (the spec column
//! carries the concentration, e.g. `sf:q=19,p=18`).
//! Paper checkpoints (q = 19): balanced p = 15 accepts ≈87.5% of uniform
//! traffic; p = 16 ≈80%; p = 18 ≈75%.

use sf_bench::{run_cli, run_plan_stdout};
use slimfly::prelude::*;

const FIG8_TOML: &str = include_str!("../../../../figures/fig8.toml");

fn main() {
    run_cli(|args| {
        let mut plan = ExperimentPlan::from_toml_str(FIG8_TOML)?;
        let large = args.flag("large");
        let q = if large { 19 } else { 7 };
        let workers: usize = args.value("workers", 0)?;
        let routings = args.routing("routing", &plan.sweeps[0].routings.clone())?;

        // With no overriding flags the run is exactly the checked-in
        // file; --large/--concentrations re-instantiate the template
        // (uniform, worst) sweep pair per requested concentration.
        if large || args.get("concentrations").is_some() {
            if plan.sweeps.len() < 2 {
                return Err(SfError::Experiment(
                    "figures/fig8.toml no longer starts with the (uniform, worst) \
                     template sweep pair this wrapper re-instantiates — update \
                     fig8_oversub to match the file"
                        .into(),
                ));
            }
            let balanced = SlimFly::new(q)?.balanced_concentration();
            let concentrations =
                args.list("concentrations", &[balanced, balanced + 1, balanced + 3])?;
            let template: Vec<SweepPlan> = plan.sweeps.drain(..2).collect();
            let mut sweeps = Vec::with_capacity(concentrations.len() * template.len());
            for &p in &concentrations {
                for t in &template {
                    let mut s = t.clone();
                    s.topos = vec![TopologySpec::SlimFly { q, p: Some(p) }];
                    sweeps.push(s);
                }
            }
            plan.sweeps = sweeps;
        }
        let packet_size = args.packet_size()?;
        let backend: Option<Backend> = args.get("backend").map(str::parse).transpose()?;
        for sweep in &mut plan.sweeps {
            if args.get("routing").is_some() {
                sweep.routings = routings.clone();
            }
            if let Some(ps) = packet_size {
                sweep.sim.packet_size = ps;
            }
            if let Some(b) = backend {
                sweep.backend = b;
            }
        }

        run_plan_stdout(&plan, workers)?;
        Ok(())
    })
}
