//! Figures 8b–8e: oversubscribed Slim Fly networks — latency and
//! accepted bandwidth for concentrations above the balanced p (§V-E).
//!
//! Usage: `fig8_oversub [--large] [--concentrations 15,16,18]
//!                      [--routing min,val,ugal-l:c=4,ugal-g:c=4]`
//! Output: the shared experiment-record CSV schema (the spec column
//! carries the concentration, e.g. `sf:q=19,p=18`).
//! Paper checkpoints (q = 19): balanced p = 15 accepts ≈87.5% of uniform
//! traffic; p = 16 ≈80%; p = 18 ≈75%.

use sf_bench::{print_records, run_cli};
use slimfly::prelude::*;

fn main() {
    run_cli(|args| {
        let q = if args.flag("large") { 19 } else { 7 };
        let sf = SlimFly::new(q)?;
        let balanced = sf.balanced_concentration();
        let concentrations =
            args.list("concentrations", &[balanced, balanced + 1, balanced + 3])?;

        let cfg = SimConfig {
            warmup: 1_000,
            measure: 2_000,
            drain: 6_000,
            ..Default::default()
        };
        let algos = args.routing(
            "routing",
            &[
                RoutingSpec::Min,
                RoutingSpec::Valiant { cap3: false },
                RoutingSpec::UgalL { candidates: 4 },
                RoutingSpec::UgalG { candidates: 4 },
            ],
        )?;

        let mut records = Vec::new();
        for &p in &concentrations {
            for traffic in [TrafficSpec::Uniform, TrafficSpec::WorstCase] {
                let loads: &[f64] = if traffic == TrafficSpec::WorstCase {
                    &[0.05, 0.1, 0.2, 0.3, 0.4, 0.5]
                } else {
                    &[0.1, 0.25, 0.5, 0.625, 0.75, 0.875, 1.0]
                };
                records.extend(
                    Experiment::on(TopologySpec::SlimFly { q, p: Some(p) })
                        .routings(&algos)
                        .traffic(traffic)
                        .loads(loads)
                        .sim(cfg)
                        .run()?,
                );
            }
        }
        print_records(&records);
        Ok(())
    })
}
