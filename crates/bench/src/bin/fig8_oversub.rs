//! Figures 8b–8e: oversubscribed Slim Fly networks — latency and
//! accepted bandwidth for concentrations above the balanced p (§V-E).
//!
//! Usage: `fig8_oversub [--large] [--concentrations 15,16,18]`
//! Output: CSV `p,traffic,routing,offered,latency,accepted,saturated`.
//! Paper checkpoints (q = 19): balanced p = 15 accepts ≈87.5% of uniform
//! traffic; p = 16 ≈80%; p = 18 ≈75%.

use sf_bench::{f, print_csv_row};
use sf_routing::{RouteAlgo, RoutingTables};
use sf_sim::{LoadSweep, SimConfig};
use sf_topo::SlimFly;
use sf_traffic::TrafficPattern;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let large = args.iter().any(|a| a == "--large");
    let sf = if large { SlimFly::new(19).unwrap() } else { SlimFly::new(7).unwrap() };
    let balanced = sf.balanced_concentration();
    let concentrations: Vec<u32> = args
        .iter()
        .position(|a| a == "--concentrations")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').filter_map(|v| v.parse().ok()).collect())
        .unwrap_or_else(|| vec![balanced, balanced + 1, balanced + 3]);

    let cfg = SimConfig {
        warmup: 1_000,
        measure: 2_000,
        drain: 6_000,
        ..Default::default()
    };
    let algos = [
        RouteAlgo::Min,
        RouteAlgo::Valiant { cap3: false },
        RouteAlgo::UgalL { candidates: 4 },
        RouteAlgo::UgalG { candidates: 4 },
    ];

    print_csv_row(&[
        "p".into(),
        "traffic".into(),
        "routing".into(),
        "offered".into(),
        "latency".into(),
        "accepted".into(),
        "saturated".into(),
    ]);
    for &p in &concentrations {
        let net = sf.network_with_concentration(p);
        let tables = RoutingTables::new(&net.graph);
        for traffic in ["uniform", "worst"] {
            let pattern = if traffic == "uniform" {
                TrafficPattern::uniform(net.num_endpoints() as u32)
            } else {
                TrafficPattern::worst_case_slimfly(&net, &tables)
            };
            let loads: Vec<f64> = if traffic == "worst" {
                vec![0.05, 0.1, 0.2, 0.3, 0.4, 0.5]
            } else {
                vec![0.1, 0.25, 0.5, 0.625, 0.75, 0.875, 1.0]
            };
            for algo in algos {
                let results = LoadSweep::run(&net, &tables, algo, &pattern, &loads, cfg);
                for r in results {
                    print_csv_row(&[
                        p.to_string(),
                        traffic.into(),
                        algo.label().into(),
                        f(r.offered_load),
                        f(r.avg_latency),
                        f(r.accepted),
                        r.saturated.to_string(),
                    ]);
                }
            }
        }
    }
}
