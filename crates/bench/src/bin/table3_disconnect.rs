//! Table III: disconnection resiliency — the maximum fraction of cables
//! removable (5% steps) before the network disconnects.
//!
//! Usage: `table3_disconnect [--sizes 256,512,1024] [--samples 48]`
//! Output: CSV `topology,endpoints,max_removal_fraction`.
//! Paper checkpoints (N = 4096 row): T3D 5%, T5D 40%, HC 45%, LH-HC 55%,
//! FT-3 55%, DF 60%, FBF-3 70%, DLN 70%, SF 70%.

use sf_bench::{print_csv_row, run_cli};
use sf_graph::failure::{max_tolerable_fraction, FailureConfig, Property};
use slimfly::prelude::*;

fn main() {
    run_cli(|args| {
        let sizes = args.list("sizes", &[256usize, 512, 1024])?;
        let samples: usize = args.value("samples", 48)?;

        let cfg = FailureConfig {
            min_samples: samples / 2,
            max_samples: samples,
            ..Default::default()
        };

        print_csv_row(&[
            "topology".into(),
            "endpoints".into(),
            "max_removal_fraction".into(),
        ]);
        for &n in &sizes {
            for topo in spec::roster(n) {
                let net = topo.build()?;
                let frac = max_tolerable_fraction(&net.graph, Property::Connected, &cfg);
                print_csv_row(&[
                    net.name.clone(),
                    net.num_endpoints().to_string(),
                    format!("{:.0}%", frac * 100.0),
                ]);
            }
        }
        Ok(())
    })
}
