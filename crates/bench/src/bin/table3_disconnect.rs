//! Table III: disconnection resiliency — the maximum fraction of cables
//! removable (5% steps) before the network disconnects.
//!
//! Usage: `table3_disconnect [--sizes 256,512,1024] [--samples 48]`
//! Output: CSV `topology,endpoints,max_removal_fraction`.
//! Paper checkpoints (N = 4096 row): T3D 5%, T5D 40%, HC 45%, LH-HC 55%,
//! FT-3 55%, DF 60%, FBF-3 70%, DLN 70%, SF 70%.

use sf_bench::{print_csv_row, roster};
use sf_graph::failure::{max_tolerable_fraction, FailureConfig, Property};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sizes: Vec<usize> = args
        .iter()
        .position(|a| a == "--sizes")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').filter_map(|v| v.parse().ok()).collect())
        .unwrap_or_else(|| vec![256, 512, 1024]);
    let samples: usize = args
        .iter()
        .position(|a| a == "--samples")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(48);

    let cfg = FailureConfig {
        min_samples: samples / 2,
        max_samples: samples,
        ..Default::default()
    };

    print_csv_row(&[
        "topology".into(),
        "endpoints".into(),
        "max_removal_fraction".into(),
    ]);
    for &n in &sizes {
        for net in roster(n) {
            let frac = max_tolerable_fraction(&net.graph, Property::Connected, &cfg);
            print_csv_row(&[
                net.name.clone(),
                net.num_endpoints().to_string(),
                format!("{:.0}%", frac * 100.0),
            ]);
        }
    }
}
