//! Figure 1: average number of hops (uniform traffic, minimal routing)
//! vs network size for every topology.
//!
//! Usage: `fig1_avg_hops [--sizes 256,512,1024,2048]`
//!
//! Output: CSV `topology,endpoints,routers,avg_hops` — one series per
//! topology, reproducing the ordering of Fig 1 (Slim Fly lowest,
//! tori highest).

use sf_bench::{f, print_csv_row, run_cli};
use slimfly::prelude::*;

fn main() {
    run_cli(|args| {
        let sizes = args.list("sizes", &[256usize, 512, 1024, 2048, 4096])?;

        print_csv_row(&[
            "topology".into(),
            "endpoints".into(),
            "routers".into(),
            "avg_hops".into(),
        ]);
        for &n in &sizes {
            for topo in spec::roster(n) {
                let flow = Experiment::on(topo).flow()?;
                print_csv_row(&[
                    flow.topology,
                    flow.endpoints.to_string(),
                    flow.routers.to_string(),
                    f(flow.avg_hops),
                ]);
            }
        }
        Ok(())
    })
}
