//! Figure 1: average number of hops (uniform traffic, minimal routing)
//! vs network size for every topology.
//!
//! Usage: `fig1_avg_hops [--sizes 256,512,1024,2048]`
//!
//! Output: CSV `topology,endpoints,routers,avg_hops` — one series per
//! topology, reproducing the ordering of Fig 1 (Slim Fly lowest,
//! tori highest).

use sf_bench::{f, print_csv_row, roster};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sizes: Vec<usize> = args
        .iter()
        .position(|a| a == "--sizes")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').filter_map(|v| v.parse().ok()).collect())
        .unwrap_or_else(|| vec![256, 512, 1024, 2048, 4096]);

    print_csv_row(&[
        "topology".into(),
        "endpoints".into(),
        "routers".into(),
        "avg_hops".into(),
    ]);
    for &n in &sizes {
        for net in roster(n) {
            let hops = sf_flow::average_hops_uniform(&net);
            print_csv_row(&[
                net.name.clone(),
                net.num_endpoints().to_string(),
                net.num_routers().to_string(),
                f(hops),
            ]);
        }
    }
}
