//! Table IV: detailed cost & power comparison at N ≈ 10,830 / k ≈ 43 —
//! the paper's flagship cost table.
//!
//! Output: CSV with one row per configuration:
//! `topology,endpoints,routers,radix,electric,fiber,cost_per_node,power_per_node`.
//!
//! Paper checkpoints: SF $1,033 & 8.02 W/node; DF(k=43) $1,365 & 10.9;
//! FBF-3 ~$1,5xx; FT-3 most expensive of the high-radix group; tori/HC
//! 2–6× SF. Cable *counts* differ from the paper's (see DESIGN.md §6 —
//! we count from an explicit layout and include endpoint cables).

use sf_bench::print_csv_row;
use sf_cost::{CostBreakdown, CostModel};
use sf_topo::dragonfly::Dragonfly;
use sf_topo::fattree::FatTree3;
use sf_topo::flatbutterfly::FlattenedButterfly;
use sf_topo::hypercube::Hypercube;
use sf_topo::longhop::LongHop;
use sf_topo::random_dln::RandomDln;
use sf_topo::torus::Torus;
use sf_topo::{Network, SlimFly};

fn main() {
    let model = CostModel::fdr10();

    // The paper's Table IV configurations (as close as integer
    // parameters allow; see EXPERIMENTS.md E15).
    let nets: Vec<Network> = vec![
        Torus::new(vec![22, 22, 22]).network(), // N = 10648
        Torus::new(vec![6, 6, 6, 6, 8]).network(), // N = 10368
        Hypercube::new(13).network(),           // N = 8192
        LongHop::new(13, 3).network(),          // N = 8192
        FatTree3 { p: 22, full: true }.network(), // §VI cost variant
        RandomDln::new(4020, 31, sf_bench::BENCH_SEED).network(),
        FlattenedButterfly { c: 12, dims: 3, p: 12 }.network(), // N = 20736
        Dragonfly::balanced(11).network(),      // k = 43 class
        Dragonfly::paper_table4_variant().network(), // k=43, N=10890
        SlimFly::new(19).unwrap().network(),    // k = 44, N = 10830
    ];

    print_csv_row(&[
        "topology".into(),
        "endpoints".into(),
        "routers".into(),
        "radix".into(),
        "electric_cables".into(),
        "fiber_cables".into(),
        "cost_per_node".into(),
        "power_per_node_w".into(),
    ]);
    for net in &nets {
        let b = CostBreakdown::compute(net, &model);
        print_csv_row(&[
            net.name.clone(),
            b.n.to_string(),
            b.nr.to_string(),
            b.radix.to_string(),
            b.electric_cables.to_string(),
            b.fiber_cables.to_string(),
            format!("{:.0}", b.cost_per_endpoint()),
            format!("{:.2}", b.power_per_endpoint()),
        ]);
    }
}
