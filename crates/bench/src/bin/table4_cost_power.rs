//! Table IV: detailed cost & power comparison at N ≈ 10,830 / k ≈ 43 —
//! the paper's flagship cost table.
//!
//! Usage: `table4_cost_power [--specs sf:q=19,df:p=11]` (semicolon- or
//! comma-free spec lists are awkward in CSV flags, so `--specs` takes a
//! `;`-separated list).
//!
//! Output: CSV with one row per configuration:
//! `topology,endpoints,routers,radix,electric,fiber,cost_per_node,power_per_node`.
//!
//! Paper checkpoints: SF $1,033 & 8.02 W/node; DF(k=43) $1,365 & 10.9;
//! FBF-3 ~$1,5xx; FT-3 most expensive of the high-radix group; tori/HC
//! 2–6× SF. Cable *counts* differ from the paper's (see DESIGN.md §6 —
//! we count from an explicit layout and include endpoint cables).

use sf_bench::{print_csv_row, run_cli};
use slimfly::prelude::*;

/// The paper's Table IV configurations (as close as integer parameters
/// allow; see EXPERIMENTS.md E15), as declarative specs.
const TABLE_IV: &str = "torus3:k=22;torus:dims=6x6x6x6x8;hc:d=13;lh:d=13,l=3;ft3:p=22,full;\
                        dln:nr=4020,y=31;fbf:c=12,dims=3;df:p=11;df:a=22,h=11,p=11,g=45;sf:q=19";

fn main() {
    run_cli(|args| {
        let model = CostModel::fdr10();
        let raw = args.get("specs").unwrap_or(TABLE_IV);
        let specs = raw
            .split(';')
            .map(|s| s.trim().parse::<TopologySpec>())
            .collect::<Result<Vec<_>, _>>()?;

        print_csv_row(&[
            "topology".into(),
            "endpoints".into(),
            "routers".into(),
            "radix".into(),
            "electric_cables".into(),
            "fiber_cables".into(),
            "cost_per_node".into(),
            "power_per_node_w".into(),
        ]);
        for topo in &specs {
            let b = Experiment::on(topo.clone()).cost(&model)?;
            print_csv_row(&[
                b.name.clone(),
                b.n.to_string(),
                b.nr.to_string(),
                b.radix.to_string(),
                b.electric_cables.to_string(),
                b.fiber_cables.to_string(),
                format!("{:.0}", b.cost_per_endpoint()),
                format!("{:.2}", b.power_per_endpoint()),
            ]);
        }
        Ok(())
    })
}
