//! Figure 5a: router counts vs the Moore bound for diameter-2
//! topologies — Slim Fly MMS, 2-level flattened butterfly, 2-stage fat
//! tree (Long Hop's diameter-2 family is approximated per DESIGN.md).
//!
//! Usage: `fig5a_moore2 [--qmax 64]`
//! Output: CSV `kprime,moore2,sf_nr,sf_frac,fbf2_nr,ft2_nr`.
//! Checkpoint from the paper: for k' = 96 the MMS graph has 8,192
//! routers, 12% below the bound of 9,217.

use sf_bench::{f, print_csv_row, run_cli};
use sf_topo::fattree::fattree2_routers;
use sf_topo::moore::moore_bound;
use slimfly::prelude::*;

fn main() {
    run_cli(|args| {
        let qmax: u32 = args.value("qmax", 64)?;

        print_csv_row(&[
            "kprime".into(),
            "moore2".into(),
            "sf_nr".into(),
            "sf_frac".into(),
            "fbf2_nr".into(),
            "ft2_nr".into(),
        ]);
        for q in SlimFly::admissible_q_up_to(qmax) {
            let sf = SlimFly::new(q)?;
            let kp = sf.network_radix() as u64;
            let mb = moore_bound(kp, 2);
            let nr = sf.num_routers() as u64;
            // FBF-2 with the same k': extent c = k'/2 + 1 → Nr = c².
            let c = kp / 2 + 1;
            let fbf2 = c * c;
            print_csv_row(&[
                kp.to_string(),
                mb.to_string(),
                nr.to_string(),
                f(nr as f64 / mb as f64),
                fbf2.to_string(),
                fattree2_routers(kp).to_string(),
            ]);
        }
        // The paper's headline data point: q = 64 (δ = 0) gives k' = 96,
        // Nr = 8192 vs the bound 9217 — "only 12% worse" (§II-B3).
        let sf64 = SlimFly::new(64)?;
        eprintln!(
            "# check: k'={} Nr={} MB={} frac={:.3} (paper: 8192/9217 = 0.889)",
            sf64.network_radix(),
            sf64.num_routers(),
            moore_bound(sf64.network_radix() as u64, 2),
            sf64.num_routers() as f64 / moore_bound(sf64.network_radix() as u64, 2) as f64
        );
        Ok(())
    })
}
