//! Table II: network diameters — the paper's formulas vs BFS-measured
//! values on concrete instances.
//!
//! Usage: `table2_diameter [--size 1024]`
//! Output: CSV `topology,routers,formula_diameter,measured_diameter`.

use sf_bench::{print_csv_row, roster};
use sf_graph::metrics;
use sf_topo::TopologyKind;

fn formula(net: &sf_topo::Network) -> String {
    let nr = net.num_routers() as f64;
    match &net.kind {
        TopologyKind::SlimFly { .. } => "2".into(),
        TopologyKind::Dragonfly { .. } => "3".into(),
        TopologyKind::FatTree3 { .. } => "4".into(),
        TopologyKind::FlattenedButterfly { dims, .. } => dims.to_string(),
        TopologyKind::Torus { dims } => {
            // ⌈(n/2)·Nr^(1/n)⌉ in the paper; exact = Σ ⌊extent/2⌋.
            let exact: u32 = dims.iter().map(|&d| d / 2).sum();
            exact.to_string()
        }
        TopologyKind::Hypercube { d } => d.to_string(),
        TopologyKind::LongHop { .. } => "4-6".into(),
        TopologyKind::RandomDln { .. } => "3-10".into(),
        _ => format!("~{:.0}", nr.log2()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let size: usize = args
        .iter()
        .position(|a| a == "--size")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);

    print_csv_row(&[
        "topology".into(),
        "routers".into(),
        "formula_diameter".into(),
        "measured_diameter".into(),
    ]);
    for net in roster(size) {
        let measured = metrics::diameter(&net.graph)
            .map(|d| d.to_string())
            .unwrap_or_else(|| "disconnected".into());
        print_csv_row(&[
            net.name.clone(),
            net.num_routers().to_string(),
            formula(&net),
            measured,
        ]);
    }
}
