//! Table II: network diameters — the paper's formulas vs BFS-measured
//! values on concrete instances.
//!
//! Usage: `table2_diameter [--size 1024]`
//! Output: CSV `topology,routers,formula_diameter,measured_diameter`.

use sf_bench::{print_csv_row, run_cli};
use slimfly::prelude::*;

fn main() {
    run_cli(|args| {
        let size: usize = args.value("size", 1024)?;

        print_csv_row(&[
            "topology".into(),
            "routers".into(),
            "formula_diameter".into(),
            "measured_diameter".into(),
        ]);
        for topo in spec::roster(size) {
            let net = topo.build()?;
            let measured = metrics::diameter(&net.graph)
                .map(|d| d.to_string())
                .unwrap_or_else(|| "disconnected".into());
            print_csv_row(&[
                net.name.clone(),
                net.num_routers().to_string(),
                net.diameter_formula(),
                measured,
            ]);
        }
        Ok(())
    })
}
