//! Figure 5c: bisection bandwidth vs network size (10 Gb/s links).
//!
//! Slim Fly, DLN and Long Hop are partitioned with the FM bisector (the
//! paper uses METIS); the other topologies use their analytic
//! bisections via [`Network::analytic_bisection_cables`].
//!
//! Usage: `fig5c_bisection [--sizes 256,512,...] [--starts 8]`
//! Output: CSV `topology,endpoints,bisection_links,bisection_gbps`.

use sf_bench::{print_csv_row, run_cli, BENCH_SEED};
use slimfly::prelude::*;

const LINK_GBPS: f64 = 10.0;

fn main() {
    run_cli(|args| {
        let sizes = args.list("sizes", &[256usize, 512, 1024, 2048])?;
        let starts: usize = args.value("starts", 8)?;

        print_csv_row(&[
            "topology".into(),
            "endpoints".into(),
            "bisection_links".into(),
            "bisection_gbps".into(),
        ]);
        for &n in &sizes {
            for topo in spec::roster(n) {
                let net = topo.build()?;
                let links = match net.analytic_bisection_cables() {
                    Some(links) => links,
                    // Partitioned (paper: METIS) for SF, DLN, LH-HC.
                    None => {
                        let weights: Vec<u64> =
                            net.concentration.iter().map(|&c| c.max(1) as u64).collect();
                        partition::bisect_weighted(&net.graph, &weights, starts, BENCH_SEED, 0).cut
                            as u64
                    }
                };
                print_csv_row(&[
                    net.name.clone(),
                    net.num_endpoints().to_string(),
                    links.to_string(),
                    format!("{:.0}", links as f64 * LINK_GBPS),
                ]);
            }
        }
        Ok(())
    })
}
