//! Figure 5c: bisection bandwidth vs network size (10 Gb/s links).
//!
//! Slim Fly and DLN are partitioned with the FM bisector (the paper uses
//! METIS); the other topologies use their analytic bisections:
//! `N/2` (HC, FT-3), `≈N/4` (DF, FBF-3), `2·Nr/extent` (tori),
//! `3N/2`-class (LH-HC, also measured).
//!
//! Usage: `fig5c_bisection [--sizes 256,512,...] [--starts 8]`
//! Output: CSV `topology,endpoints,bisection_links,bisection_gbps`.

use sf_bench::{print_csv_row, roster, BENCH_SEED};
use sf_graph::partition;
use sf_topo::TopologyKind;

const LINK_GBPS: f64 = 10.0;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sizes: Vec<usize> = args
        .iter()
        .position(|a| a == "--sizes")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').filter_map(|v| v.parse().ok()).collect())
        .unwrap_or_else(|| vec![256, 512, 1024, 2048]);
    let starts: usize = args
        .iter()
        .position(|a| a == "--starts")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);

    print_csv_row(&[
        "topology".into(),
        "endpoints".into(),
        "bisection_links".into(),
        "bisection_gbps".into(),
    ]);
    for &n in &sizes {
        for net in roster(n) {
            let links = match &net.kind {
                // Analytic values where the paper uses them.
                TopologyKind::Hypercube { .. } | TopologyKind::FatTree3 { .. } => {
                    (net.num_endpoints() / 2) as u64
                }
                TopologyKind::Dragonfly { .. } | TopologyKind::FlattenedButterfly { .. } => {
                    (net.num_endpoints() / 4) as u64
                }
                TopologyKind::Torus { dims } => {
                    let max = *dims.iter().max().unwrap() as u64;
                    let nr = net.num_routers() as u64;
                    if max == 2 { nr / max } else { 2 * nr / max }
                }
                // Partitioned (paper: METIS) for SF, DLN, LH-HC.
                _ => {
                    let weights: Vec<u64> =
                        net.concentration.iter().map(|&c| c.max(1) as u64).collect();
                    partition::bisect_weighted(&net.graph, &weights, starts, BENCH_SEED, 0).cut
                        as u64
                }
            };
            print_csv_row(&[
                net.name.clone(),
                net.num_endpoints().to_string(),
                links.to_string(),
                format!("{:.0}", links as f64 * LINK_GBPS),
            ]);
        }
    }
}
