//! Figures 11a/11b (and 12a/13a/13b): the cable and router cost models —
//! sampled curves of the linear fits of §VI-B.
//!
//! Output: two CSV blocks:
//!   `model,cable,length_m,cost_per_gbps`
//!   `model,radix,router_cost`

use sf_bench::{f, print_csv_row, run_cli};
use slimfly::prelude::*;

fn main() {
    run_cli(|_args| {
        let models = [CostModel::fdr10(), CostModel::qdr56(), CostModel::sfp10()];

        print_csv_row(&[
            "model".into(),
            "cable".into(),
            "length_m".into(),
            "cost_per_gbps".into(),
        ]);
        for m in &models {
            for len in [1u32, 2, 5, 10, 15, 20, 25, 30] {
                print_csv_row(&[
                    m.name.into(),
                    "electric".into(),
                    len.to_string(),
                    f(m.electric_cable_cost(len as f64) / m.gbps),
                ]);
                print_csv_row(&[
                    m.name.into(),
                    "optical".into(),
                    len.to_string(),
                    f(m.fiber_cable_cost(len as f64) / m.gbps),
                ]);
            }
        }

        println!();
        print_csv_row(&["model".into(), "radix".into(), "router_cost".into()]);
        for m in &models {
            for k in [12u32, 18, 24, 36, 48, 64, 96, 108] {
                print_csv_row(&[m.name.into(), k.to_string(), f(m.router_cost(k as usize))]);
            }
        }
        Ok(())
    })
}
