//! `sf-bench` — the experiment-file runner: whole paper figures as
//! data, not binaries.
//!
//! Usage:
//!   `sf-bench run <file.toml|file.json> [--workers N] [--threads N]
//!                 [--out PATH] [--format csv|jsonl] [--report PATH]
//!                 [--cache DIR | --no-cache]
//!                 [--check-builder] [--quiet]`
//!   `sf-bench validate <file>...`
//!   `sf-bench verify <file>... [--quiet]`
//!   `sf-bench survive <file>...`
//!   `sf-bench cache <stats|gc|clear> [--cache DIR]`
//!
//! `run` parses an [`ExperimentPlan`], expands it to a deterministic
//! job set and executes it on the work-stealing scheduler, streaming
//! records as jobs finish: CSV to stdout (unless `--quiet`), plus
//! `--out` (CSV, or JSON lines with `--format jsonl`) and a markdown
//! report per `--report` (the EXPERIMENTS.md generator). `--threads N`
//! overrides the engine thread count of every job (the `[sweep.sim]
//! threads` plan knob); because engine output is thread-count
//! independent, the record stream is byte-identical for any value — CI
//! exercises exactly that by diffing a `--threads 2` run against
//! `--threads 1`. A run summary
//! goes to stderr, keeping stdout pure CSV. `--check-builder` re-runs
//! the whole plan sequentially through the single-worker path and
//! fails unless both record streams are byte-identical — the
//! scheduler-determinism guard CI exercises on every push.
//!
//! `run` consults a persistent content-addressed **result cache** when
//! one is configured: `--cache DIR` names the directory explicitly,
//! the `SF_CACHE_DIR` environment variable supplies a default, and
//! `--no-cache` disables caching even when the variable is set. Each
//! job is keyed by a stable hash of everything its records depend on —
//! the canonical plan rendering (topology + fault plan, routing,
//! traffic, backend, loads, warm-start, sim config minus `threads`)
//! plus the seed and the engine epoch — so hits replay stored records
//! byte-identically to a cold run, while misses simulate and write
//! through. Re-submitting a figure with one new load point simulates
//! only the delta. The summary line reports `cache: hits=H misses=M`.
//!
//! `cache` inspects and maintains a cache directory: `stats` counts
//! valid/stale/corrupt entries, `gc` removes entries stranded by an
//! engine-epoch bump (and anything corrupt), `clear` removes all.
//!
//! `validate` parses and expands each file without running anything
//! (CI does this for every checked-in `figures/*.toml`).
//!
//! `verify` goes one tier further: for every distinct (topology,
//! routing, VC budget, packet size) combination a cycle-backend job
//! would exercise, it builds the wormhole-aware channel dependency
//! graph under the engine's exact VC-allocation arithmetic and
//! certifies deadlock freedom and routing totality, printing one
//! certificate line per combination. A proven deadlock fails the run
//! with the offending channel cycle rendered in the error. `run`
//! performs the same pass automatically before simulating. CI verifies
//! every checked-in `figures/*.toml`.
//!
//! `survive` audits the fault plans of experiment files: for every
//! topology instance with a `[sweep.faults]` table it lowers the plan
//! to its concrete seeded kill-set, reports whether that exact
//! kill-set boots (the degradation connectivity check), and estimates
//! the Monte-Carlo survival probability at the same cable-loss
//! fraction (`sf_graph::failure`, the paper's §III-D resiliency
//! analysis) — the two views agree on the sampler by construction, so
//! a plan's seeded outcome can be read against the population
//! statistics it was drawn from.

use sf_bench::{print_raw_line, run_cli, StdoutCsvSink};
use slimfly::cache::ResultCache;
use slimfly::plan::ExperimentPlan;
use slimfly::report::render_plan_report;
use slimfly::sink::{CsvSink, JsonLinesSink, MemorySink, RecordSink, TeeSink};
use slimfly::{Scheduler, SfError};
use std::path::Path;

fn main() {
    run_cli(|args| match args.positional(0) {
        Some("run") => cmd_run(args),
        Some("validate") => cmd_validate(args),
        Some("verify") => cmd_verify(args),
        Some("survive") => cmd_survive(args),
        Some("cache") => cmd_cache(args),
        _ => Err(SfError::Cli(
            "usage: sf-bench <run|validate|verify|survive|cache> <file.toml|file.json> ...".into(),
        )),
    })
}

/// Resolves the cache directory for a command: `--cache DIR` wins,
/// then the `SF_CACHE_DIR` environment variable; `--no-cache` beats
/// both. `None` means caching is off.
fn resolve_cache_dir(args: &sf_bench::SweepArgs) -> Option<String> {
    let explicit = args.get("cache").map(str::to_string);
    if args.flag("no-cache") {
        return None;
    }
    explicit.or_else(|| std::env::var("SF_CACHE_DIR").ok().filter(|d| !d.is_empty()))
}

fn cmd_run(args: &sf_bench::SweepArgs) -> Result<(), SfError> {
    let file = args
        .positional(1)
        .ok_or_else(|| SfError::Cli("run: missing experiment file".into()))?
        .to_string();
    let workers: usize = args.value("workers", 0)?;
    let threads: usize = args.value("threads", 0)?;
    let quiet = args.flag("quiet");
    let out: Option<String> = args.get("out").map(str::to_string);
    let format: String = args.value("format", "csv".to_string())?;
    if !matches!(format.as_str(), "csv" | "jsonl") {
        return Err(SfError::Cli(format!(
            "--format {format:?} (expected csv or jsonl)"
        )));
    }
    let report_path: Option<String> = args.get("report").map(str::to_string);
    let check_builder = args.flag("check-builder");
    let cache = match resolve_cache_dir(args) {
        Some(dir) => Some(ResultCache::open(dir)?),
        None => None,
    };

    let plan = ExperimentPlan::from_path(Path::new(&file))?;
    let mut set = plan.expand()?;
    set.override_threads(threads);

    // Static verification gate: certify every cycle-backend combo
    // deadlock-free and total before burning cycles on it.
    let certs = set.verify()?;
    if !quiet && !certs.is_empty() {
        let warn = certs.iter().filter(|c| !c.certified()).count();
        eprintln!(
            "sf-bench: verified {} routing/VC combination(s) deadlock-free{}",
            certs.len(),
            if warn > 0 {
                format!(" ({warn} unchecked — see `sf-bench verify {file}`)")
            } else {
                String::new()
            }
        );
    }

    // Tee over borrowed sinks: stdout stays readable afterwards (it
    // collects the records for --report/--check-builder).
    let mut stdout_sink = StdoutCsvSink {
        quiet,
        collect: report_path.is_some() || check_builder,
        records: Vec::new(),
    };
    let mut file_sink: Option<Box<dyn RecordSink>> = match &out {
        None => None,
        Some(path) => {
            let path = Path::new(path);
            Some(match format.as_str() {
                "jsonl" => Box::new(JsonLinesSink::create(path)?),
                _ => Box::new(CsvSink::create(path)?),
            })
        }
    };
    let report = {
        let mut sinks: Vec<Box<dyn RecordSink + '_>> = vec![Box::new(&mut stdout_sink)];
        if let Some(f) = file_sink.as_mut() {
            sinks.push(Box::new(&mut **f));
        }
        let mut tee = TeeSink::new(sinks);
        Scheduler::new(workers)
            .with_cache(cache.clone())
            .run(&mut set, &mut tee)?
    };
    let records = stdout_sink.records;
    eprintln!(
        "sf-bench run {file}: {} jobs, {} records, workers={}, steals={}, wall={:.1}s",
        report.jobs,
        report.records,
        report.workers,
        report.steals,
        report.wall.as_secs_f64()
    );
    if let Some(c) = &cache {
        eprintln!(
            "sf-bench run {file}: cache: hits={} misses={} ({}{})",
            report.cache_hits,
            report.cache_misses,
            c.root().display(),
            if report.cache_store_errors > 0 {
                format!(", {} store error(s)", report.cache_store_errors)
            } else {
                String::new()
            }
        );
    }

    if let Some(path) = &report_path {
        let body = render_plan_report(&plan, &records);
        std::fs::write(
            path,
            format!("{body}\n_Generated by `sf-bench run {file} --report {path}`._\n"),
        )?;
        eprintln!("sf-bench: wrote report to {path}");
    }

    if check_builder {
        // Re-run the same prepared set sequentially: run_job is
        // read-only, so networks/tables/routers/patterns are reused
        // and only the simulations repeat. Deliberately cache-free —
        // the reference stream must come from real simulation, so
        // this also cross-checks cache replay on warm runs.
        let mut ref_sink = MemorySink::new();
        Scheduler::new(1).run(&mut set, &mut ref_sink)?;
        let got: Vec<String> = records.iter().map(|r| r.to_csv()).collect();
        let want: Vec<String> = ref_sink.records().iter().map(|r| r.to_csv()).collect();
        if got != want {
            return Err(SfError::Experiment(format!(
                "scheduler record stream diverges from the sequential path \
                 ({} vs {} records, first difference at row {})",
                got.len(),
                want.len(),
                got.iter()
                    .zip(&want)
                    .position(|(a, b)| a != b)
                    .map(|i| i.to_string())
                    .unwrap_or_else(|| "end".into()),
            )));
        }
        eprintln!(
            "sf-bench: --check-builder OK ({} records byte-identical to the sequential path)",
            got.len()
        );
    }
    Ok(())
}

fn cmd_cache(args: &sf_bench::SweepArgs) -> Result<(), SfError> {
    let action = args
        .positional(1)
        .ok_or_else(|| SfError::Cli("usage: sf-bench cache <stats|gc|clear> [--cache DIR]".into()))?
        .to_string();
    let dir = resolve_cache_dir(args).ok_or_else(|| {
        SfError::Cli("cache: no directory (pass --cache DIR or set SF_CACHE_DIR)".into())
    })?;
    let cache = ResultCache::open(&dir)?;
    match action.as_str() {
        "stats" => {
            let st = cache.stats()?;
            print_raw_line(&format!(
                "{dir}: {} entr{} ({} bytes) — {} valid (epoch {}), {} stale, {} corrupt",
                st.entries(),
                if st.entries() == 1 { "y" } else { "ies" },
                st.bytes,
                st.valid,
                slimfly::sim::ENGINE_EPOCH,
                st.stale,
                st.corrupt
            ));
        }
        "gc" => {
            let rep = cache.gc()?;
            print_raw_line(&format!(
                "{dir}: removed {} stale + {} corrupt entr{}, kept {} valid",
                rep.removed_stale,
                rep.removed_corrupt,
                if rep.removed_stale + rep.removed_corrupt == 1 {
                    "y"
                } else {
                    "ies"
                },
                rep.kept
            ));
        }
        "clear" => {
            let n = cache.clear()?;
            print_raw_line(&format!(
                "{dir}: removed {n} entr{}",
                if n == 1 { "y" } else { "ies" }
            ));
        }
        other => {
            return Err(SfError::Cli(format!(
                "cache: unknown action {other:?} (expected stats, gc, or clear)"
            )))
        }
    }
    Ok(())
}

fn cmd_validate(args: &sf_bench::SweepArgs) -> Result<(), SfError> {
    let mut idx = 1;
    let mut seen = 0;
    while let Some(file) = args.positional(idx) {
        let plan = ExperimentPlan::from_path(Path::new(file))?;
        let set = plan.expand()?;
        print_raw_line(&format!(
            "{file}: OK — {} sweeps, {} jobs, {} records over {} topologies",
            plan.sweeps.len(),
            set.jobs().len(),
            set.num_records(),
            set.topos().len()
        ));
        idx += 1;
        seen += 1;
    }
    if seen == 0 {
        return Err(SfError::Cli("validate: no experiment files given".into()));
    }
    Ok(())
}

fn cmd_survive(args: &sf_bench::SweepArgs) -> Result<(), SfError> {
    use slimfly::graph::failure::{survival_probability, FailureConfig, Property};
    use slimfly::graph::fault::kill_set;
    let mut idx = 1;
    let mut seen = 0;
    let mut audited = 0;
    while let Some(file) = args.positional(idx) {
        let plan = ExperimentPlan::from_path(Path::new(file))?;
        let set = plan.expand()?;
        for (spec, fp) in set.topos().iter().zip(set.topo_faults()) {
            let Some(f) = fp else { continue };
            let net = spec.build()?;
            let kill = kill_set(&net.graph, f.links, f.routers, f.seed, f.mode);
            // The concrete seeded outcome this plan will boot with.
            let boot = match net.degrade(&kill, &f.suffix()) {
                Ok(d) => format!(
                    "boots ({} of {} cables live, {} of {} routers)",
                    d.graph.num_edges(),
                    net.graph.num_edges(),
                    (0..d.graph.num_vertices() as u32)
                        .filter(|&v| d.graph.degree(v) > 0)
                        .count(),
                    net.num_routers(),
                ),
                Err(e) => format!("REFUSED at boot: {e}"),
            };
            // The population view: Monte-Carlo survival at the same
            // cable-loss fraction, over the identical sampler.
            let (p, samples) = survival_probability(
                &net.graph,
                f.links,
                Property::Connected,
                &FailureConfig::default(),
            );
            print_raw_line(&format!(
                "{file}: {spec}{} — kill-set: {} cables, {} routers; {boot}; \
                 P[connected | {:.1}% random cable loss] ≈ {p:.3} ({samples} samples)",
                f.suffix(),
                kill.links.len(),
                kill.routers.len(),
                f.links * 100.0,
            ));
            audited += 1;
        }
        idx += 1;
        seen += 1;
    }
    if seen == 0 {
        return Err(SfError::Cli("survive: no experiment files given".into()));
    }
    eprintln!("sf-bench survive: {seen} file(s), {audited} fault plan(s) audited");
    if audited == 0 {
        eprintln!("sf-bench survive: no [sweep.faults] tables found — nothing to audit");
    }
    Ok(())
}

fn cmd_verify(args: &sf_bench::SweepArgs) -> Result<(), SfError> {
    let quiet = args.flag("quiet");
    let mut idx = 1;
    let mut seen = 0;
    let mut combos = 0;
    let mut unchecked = 0;
    while let Some(file) = args.positional(idx) {
        let plan = ExperimentPlan::from_path(Path::new(file))?;
        let mut set = plan.expand()?;
        let certs = set.verify()?;
        for c in &certs {
            if !c.certified() {
                unchecked += 1;
            }
            if !quiet {
                print_raw_line(&format!("{file}: {c}"));
            }
        }
        print_raw_line(&format!(
            "{file}: VERIFIED — {} combination(s) over {} topologies ({} jobs)",
            certs.len(),
            set.topos().len(),
            set.jobs().len()
        ));
        combos += certs.len();
        idx += 1;
        seen += 1;
    }
    if seen == 0 {
        return Err(SfError::Cli("verify: no experiment files given".into()));
    }
    eprintln!(
        "sf-bench verify: {seen} file(s), {combos} combination(s) certified{}",
        if unchecked > 0 {
            format!(", {unchecked} unchecked (too large for CDG construction)")
        } else {
            String::new()
        }
    );
    Ok(())
}
