//! Figure 8a: influence of input-buffer size on Slim Fly performance
//! under worst-case traffic (UGAL-L).
//!
//! Usage: `fig8a_buffers [--large] [--buffers 8,16,32,64,128,256]`
//! Output: CSV `buffer_flits,offered,latency,accepted,saturated`.
//! Paper shape: smaller buffers → lower latency (stiffer backpressure);
//! larger buffers → higher bandwidth.

use sf_bench::{f, print_csv_row};
use sf_routing::{RouteAlgo, RoutingTables};
use sf_sim::{LoadSweep, SimConfig};
use sf_topo::SlimFly;
use sf_traffic::TrafficPattern;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let large = args.iter().any(|a| a == "--large");
    let buffers: Vec<usize> = args
        .iter()
        .position(|a| a == "--buffers")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').filter_map(|v| v.parse().ok()).collect())
        .unwrap_or_else(|| vec![8, 16, 32, 64, 128, 256]);

    let sf = if large { SlimFly::new(19).unwrap() } else { SlimFly::new(7).unwrap() };
    let net = sf.network();
    let tables = RoutingTables::new(&net.graph);
    let pattern = TrafficPattern::worst_case_slimfly(&net, &tables);
    let loads = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5];

    print_csv_row(&[
        "buffer_flits".into(),
        "offered".into(),
        "latency".into(),
        "accepted".into(),
        "saturated".into(),
    ]);
    for &b in &buffers {
        let cfg = SimConfig {
            buf_per_port: b,
            warmup: 1_000,
            measure: 2_000,
            drain: 6_000,
            ..Default::default()
        };
        let results = LoadSweep::run(
            &net,
            &tables,
            RouteAlgo::UgalL { candidates: 4 },
            &pattern,
            &loads,
            cfg,
        );
        for r in results {
            print_csv_row(&[
                b.to_string(),
                f(r.offered_load),
                f(r.avg_latency),
                f(r.accepted),
                r.saturated.to_string(),
            ]);
        }
    }
}
