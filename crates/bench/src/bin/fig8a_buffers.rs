//! Figure 8a: influence of input-buffer size on Slim Fly performance
//! under worst-case traffic (UGAL-L).
//!
//! Usage: `fig8a_buffers [--large] [--buffers 8,16,32,64,128,256]
//!                       [--routing ugal-l:c=4]`
//! Output: CSV `buffer_flits` + the shared experiment-record schema.
//! Paper shape: smaller buffers → lower latency (stiffer backpressure);
//! larger buffers → higher bandwidth.

use sf_bench::{print_raw_line, run_cli};
use slimfly::prelude::*;

fn main() {
    run_cli(|args| {
        let buffers = args.list("buffers", &[8usize, 16, 32, 64, 128, 256])?;
        let routings = args.routing("routing", &[RoutingSpec::UgalL { candidates: 4 }])?;
        let spec: TopologySpec = if args.flag("large") {
            "sf:q=19".parse()?
        } else {
            "sf:q=7".parse()?
        };
        let loads = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5];

        print_raw_line(&format!("buffer_flits,{}", Record::CSV_HEADER));
        for &b in &buffers {
            let cfg = SimConfig {
                buf_per_port: b,
                warmup: 1_000,
                measure: 2_000,
                drain: 6_000,
                ..Default::default()
            };
            let records = Experiment::on(spec.clone())
                .routings(&routings)
                .traffic(TrafficSpec::WorstCase)
                .loads(&loads)
                .sim(cfg)
                .run()?;
            for r in records {
                // `to_csv` is already per-field quoted; prefix the
                // buffer column and emit verbatim.
                print_raw_line(&format!("{b},{}", r.to_csv()));
            }
        }
        Ok(())
    })
}
