//! Figure 8a: influence of input-buffer size on Slim Fly performance
//! under worst-case traffic (UGAL-L).
//!
//! A thin wrapper over the checked-in `figures/fig8a.toml` experiment
//! file (`sf-bench run figures/fig8a.toml` executes it unmodified; one
//! sweep per buffer size). Flags re-instantiate the file's first sweep
//! per requested buffer size:
//!
//! Usage: `fig8a_buffers [--large] [--buffers 8,16,32,64,128,256]
//!                       [--routing ugal-l:c=4] [--packet-size 4]
//!                       [--backend cycle|flow] [--workers N]`
//! (`--backend flow` ignores buffer sizes by construction — the fluid
//! model has no buffers — but keeps the column for schema parity.)
//! Output: CSV `buffer_flits` + the shared experiment-record schema.
//! Paper shape: smaller buffers → lower latency (stiffer backpressure);
//! larger buffers → higher bandwidth.

use sf_bench::{print_raw_line, run_cli};
use slimfly::prelude::*;

const FIG8A_TOML: &str = include_str!("../../../../figures/fig8a.toml");

fn main() {
    run_cli(|args| {
        let mut plan = ExperimentPlan::from_toml_str(FIG8A_TOML)?;
        let buffers = args.list("buffers", &[8usize, 16, 32, 64, 128, 256])?;
        let routings = args.routing("routing", &plan.sweeps[0].routings.clone())?;
        let workers: usize = args.value("workers", 0)?;
        let topo: TopologySpec = if args.flag("large") {
            "sf:q=19".parse()?
        } else {
            plan.sweeps[0].topos[0].clone()
        };

        // With no overriding flags the run is exactly the checked-in
        // file. --buffers re-instantiates the file's first sweep as
        // the template (one sweep per requested size); --large and
        // --routing mutate the file's sweeps in place, preserving its
        // buffer list.
        if args.get("buffers").is_some() {
            let template = plan.sweeps[0].clone();
            plan.sweeps = buffers
                .iter()
                .map(|&b| {
                    let mut s = template.clone();
                    s.sim.buf_per_port = b;
                    s
                })
                .collect();
        }
        let packet_size = args.packet_size()?;
        let backend: Option<Backend> = args.get("backend").map(str::parse).transpose()?;
        for sweep in &mut plan.sweeps {
            if args.flag("large") {
                sweep.topos = vec![topo.clone()];
            }
            if args.get("routing").is_some() {
                sweep.routings = routings.clone();
            }
            if let Some(ps) = packet_size {
                sweep.sim.packet_size = ps;
            }
            if let Some(b) = backend {
                sweep.backend = b;
            }
        }

        // Stream rows as jobs finish, prefixed with their sweep's
        // buffer size: records arrive in job order, so the per-record
        // prefix sequence is known up front from the expansion.
        let mut set = plan.expand()?;
        let prefixes: Vec<usize> = set
            .jobs()
            .iter()
            .flat_map(|j| std::iter::repeat_n(plan.sweeps[j.sweep].sim.buf_per_port, j.loads.len()))
            .collect();
        struct PrefixSink {
            prefixes: Vec<usize>,
            at: usize,
        }
        impl RecordSink for PrefixSink {
            fn begin(&mut self) -> Result<(), SfError> {
                print_raw_line(&format!("buffer_flits,{}", Record::CSV_HEADER));
                Ok(())
            }

            fn record(&mut self, r: &Record) -> Result<(), SfError> {
                // `to_csv` is already per-field quoted; prefix the
                // buffer column and emit verbatim.
                print_raw_line(&format!("{},{}", self.prefixes[self.at], r.to_csv()));
                self.at += 1;
                Ok(())
            }
        }
        let mut sink = PrefixSink { prefixes, at: 0 };
        Scheduler::new(workers).run(&mut set, &mut sink)?;
        Ok(())
    })
}
