//! §IV-D: deadlock freedom — virtual channels / layers required.
//!
//! 1. Verifies the hop-index VC scheme: 2 VCs suffice for minimal
//!    routing on diameter-2 SF, 4 VCs for ≤4-hop Valiant paths, and the
//!    resulting channel dependency graphs are acyclic.
//! 2. Runs the DFSSSP-style greedy layered VC assignment on SF vs
//!    random DLN networks — the paper reports 3 VCs for SF (OFED
//!    DFSSSP) vs 8–15 VLs for DLN.
//!
//! Usage: `vc_count [--q 5] [--dln-routers 170]`
//! Output: CSV `network,routers,scheme,vcs,acyclic`.

use sf_bench::{print_csv_row, run_cli, BENCH_SEED};
use sf_routing::deadlock::{
    all_pairs_min_paths, hop_index_is_deadlock_free, layered_vc_count, vcs_required,
};
use slimfly::prelude::*;

fn main() {
    run_cli(|args| {
        let q: u32 = args.value("q", 5)?;
        // ≈ the paper's 338-endpoint DLN (p = 2) by default. The
        // paper's DLN-2-y networks are sparse (y = 2 shortcuts, degree
        // 4) — that sparsity is what drives their 8–15 VL requirement.
        let dln_nr: usize = args.value("dln-routers", 170)?;

        print_csv_row(&[
            "network".into(),
            "routers".into(),
            "scheme".into(),
            "vcs".into(),
            "acyclic".into(),
        ]);

        let specs = [
            TopologySpec::slimfly(q),
            TopologySpec::RandomDln {
                nr: dln_nr,
                y: 2,
                seed: BENCH_SEED,
            },
        ];
        for topo in specs {
            let net = topo.build()?;
            let paths = all_pairs_min_paths(&net.graph, BENCH_SEED);
            print_csv_row(&[
                net.name.clone(),
                net.num_routers().to_string(),
                "hop-index".into(),
                vcs_required(&paths).to_string(),
                hop_index_is_deadlock_free(&paths).to_string(),
            ]);
            print_csv_row(&[
                net.name.clone(),
                net.num_routers().to_string(),
                "layered(DFSSSP-style)".into(),
                layered_vc_count(&paths).to_string(),
                "true".into(),
            ]);
        }
        Ok(())
    })
}
