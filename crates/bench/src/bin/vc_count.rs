//! §IV-D: deadlock freedom — virtual channels / layers required.
//!
//! 1. Verifies the hop-index VC scheme: 2 VCs suffice for minimal
//!    routing on diameter-2 SF, 4 VCs for ≤4-hop Valiant paths, and the
//!    resulting channel dependency graphs are acyclic.
//! 2. Runs the DFSSSP-style greedy layered VC assignment on SF vs
//!    random DLN networks — the paper reports 3 VCs for SF (OFED
//!    DFSSSP) vs 8–15 VLs for DLN.
//!
//! Usage: `vc_count [--q 5] [--dln-routers 50]`
//! Output: CSV `network,routers,scheme,vcs,acyclic`.

use sf_bench::{print_csv_row, BENCH_SEED};
use sf_routing::deadlock::{
    all_pairs_min_paths, hop_index_is_deadlock_free, layered_vc_count, vcs_required,
};
use sf_topo::random_dln::RandomDln;
use sf_topo::SlimFly;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let q: u32 = args
        .iter()
        .position(|a| a == "--q")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let dln_nr: usize = args
        .iter()
        .position(|a| a == "--dln-routers")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(170); // ≈ the paper's 338-endpoint DLN (p = 2)

    print_csv_row(&[
        "network".into(),
        "routers".into(),
        "scheme".into(),
        "vcs".into(),
        "acyclic".into(),
    ]);

    let sf = SlimFly::new(q).unwrap();
    let g = sf.router_graph();
    let paths = all_pairs_min_paths(&g, BENCH_SEED);
    print_csv_row(&[
        format!("SF(q={q})"),
        g.num_vertices().to_string(),
        "hop-index".into(),
        vcs_required(&paths).to_string(),
        hop_index_is_deadlock_free(&paths).to_string(),
    ]);
    print_csv_row(&[
        format!("SF(q={q})"),
        g.num_vertices().to_string(),
        "layered(DFSSSP-style)".into(),
        layered_vc_count(&paths).to_string(),
        "true".into(),
    ]);

    // The paper's DLN-2-y networks are sparse (y = 2 shortcuts, degree
    // 4) — that sparsity is what drives their 8–15 VL requirement.
    let dln = RandomDln::new(dln_nr, 2, BENCH_SEED);
    let gd = dln.router_graph();
    let paths_d = all_pairs_min_paths(&gd, BENCH_SEED);
    print_csv_row(&[
        format!("DLN(Nr={dln_nr})"),
        gd.num_vertices().to_string(),
        "hop-index".into(),
        vcs_required(&paths_d).to_string(),
        hop_index_is_deadlock_free(&paths_d).to_string(),
    ]);
    print_csv_row(&[
        format!("DLN(Nr={dln_nr})"),
        gd.num_vertices().to_string(),
        "layered(DFSSSP-style)".into(),
        layered_vc_count(&paths_d).to_string(),
        "true".into(),
    ]);
}
