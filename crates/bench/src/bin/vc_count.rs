//! §IV-D: deadlock freedom — virtual channels / layers required.
//!
//! A thin CLI over `sf_verify::vc_requirements` (the same
//! implementation the EXPERIMENTS.md "Static verification" section
//! renders from):
//!
//! 1. The hop-index VC scheme: 2 VCs suffice for minimal routing on
//!    diameter-2 SF, and the resulting channel dependency graph is
//!    acyclic.
//! 2. The *wormhole-aware* minimum: the smallest VC budget whose CDG
//!    under the engine's exact allocation arithmetic (base slack +
//!    per-hop clamp) stays acyclic.
//! 3. The DFSSSP-style greedy layered VC assignment on SF vs random
//!    DLN networks — the paper reports ~3 VCs for SF (OFED DFSSSP) vs
//!    8–15 VLs for DLN.
//!
//! Usage: `vc_count [--q 5] [--dln-routers 170] [--markdown]`
//! Output: CSV `network,routers,scheme,vcs,acyclic`, or the
//! EXPERIMENTS.md markdown table with `--markdown`.

use sf_bench::{print_csv_row, print_raw_line, run_cli, BENCH_SEED};
use sf_verify::{render_vc_markdown, vc_requirements, VcRow};
use slimfly::prelude::*;

fn main() {
    run_cli(|args| {
        let q: u32 = args.value("q", 5)?;
        // ≈ the paper's 338-endpoint DLN (p = 2) by default. The
        // paper's DLN-2-y networks are sparse (y = 2 shortcuts, degree
        // 4) — that sparsity is what drives their 8–15 VL requirement.
        let dln_nr: usize = args.value("dln-routers", 170)?;
        let markdown = args.flag("markdown");

        let specs = [
            TopologySpec::slimfly(q),
            TopologySpec::RandomDln {
                nr: dln_nr,
                y: 2,
                seed: BENCH_SEED,
            },
        ];
        let mut rows = Vec::new();
        for topo in specs {
            let net = topo.build()?;
            let tables = RoutingTables::new(&net.graph);
            rows.push(VcRow {
                network: net.name.clone(),
                routers: net.num_routers(),
                req: vc_requirements(&net.graph, &tables, BENCH_SEED),
            });
        }

        if markdown {
            for line in render_vc_markdown(&rows).lines() {
                print_raw_line(line);
            }
            return Ok(());
        }

        print_csv_row(&[
            "network".into(),
            "routers".into(),
            "scheme".into(),
            "vcs".into(),
            "acyclic".into(),
        ]);
        for r in &rows {
            print_csv_row(&[
                r.network.clone(),
                r.routers.to_string(),
                "hop-index".into(),
                r.req.hop_index.to_string(),
                r.req.hop_index_acyclic.to_string(),
            ]);
            print_csv_row(&[
                r.network.clone(),
                r.routers.to_string(),
                "wormhole-min".into(),
                r.req.wormhole_min.to_string(),
                "true".into(),
            ]);
            print_csv_row(&[
                r.network.clone(),
                r.routers.to_string(),
                "layered(DFSSSP-style)".into(),
                r.req.layered.to_string(),
                "true".into(),
            ]);
        }
        Ok(())
    })
}
