//! Figures 11d/12d/13d: total network power consumption vs network size.
//!
//! Usage: `fig11d_power [--sizes 512,1024,...]`
//! Output: CSV `topology,endpoints,routers,power_w,power_per_node_w`.
//! Paper shape: SF lowest (≈8 W/node at 10K endpoints vs ≈10.9 for DF);
//! low-radix topologies burn 2–6× more per node.

use sf_bench::{f, print_csv_row, run_cli};
use slimfly::prelude::*;

fn main() {
    run_cli(|args| {
        let sizes = args.list("sizes", &[512usize, 1024, 2048, 4096, 10_000])?;
        let model = CostModel::fdr10();

        print_csv_row(&[
            "topology".into(),
            "endpoints".into(),
            "routers".into(),
            "power_w".into(),
            "power_per_node_w".into(),
        ]);
        for &n in &sizes {
            for topo in spec::roster(n) {
                let b = Experiment::on(topo).cost(&model)?;
                print_csv_row(&[
                    b.name.clone(),
                    b.n.to_string(),
                    b.nr.to_string(),
                    format!("{:.0}", b.power_w),
                    f(b.power_per_endpoint()),
                ]);
            }
        }
        Ok(())
    })
}
