//! §III-D2: resiliency of the diameter — the maximum link-removal
//! fraction tolerable before the diameter grows by more than +2.
//!
//! Usage: `resil_diameter [--size 1024] [--samples 32]`
//! Output: CSV `topology,endpoints,diameter,max_removal_fraction`.
//! Paper checkpoints (N = 2^13): SF 40%, DLN 60%, DF 25%.

use sf_bench::{print_csv_row, roster};
use sf_graph::failure::{max_tolerable_fraction, FailureConfig, Property};
use sf_graph::metrics;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let size: usize = args
        .iter()
        .position(|a| a == "--size")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);
    let samples: usize = args
        .iter()
        .position(|a| a == "--samples")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);

    let cfg = FailureConfig {
        min_samples: samples / 2,
        max_samples: samples,
        distance_sources: 48,
        ..Default::default()
    };

    print_csv_row(&[
        "topology".into(),
        "endpoints".into(),
        "diameter".into(),
        "max_removal_fraction".into(),
    ]);
    for net in roster(size) {
        let d0 = match metrics::diameter(&net.graph) {
            Some(d) => d,
            None => continue,
        };
        let frac =
            max_tolerable_fraction(&net.graph, Property::DiameterAtMost(d0 + 2), &cfg);
        print_csv_row(&[
            net.name.clone(),
            net.num_endpoints().to_string(),
            d0.to_string(),
            format!("{:.0}%", frac * 100.0),
        ]);
    }
}
