//! §III-D2: resiliency of the diameter — the maximum link-removal
//! fraction tolerable before the diameter grows by more than +2.
//!
//! Usage: `resil_diameter [--size 1024] [--samples 32]`
//! Output: CSV `topology,endpoints,diameter,max_removal_fraction`.
//! Paper checkpoints (N = 2^13): SF 40%, DLN 60%, DF 25%.

use sf_bench::{print_csv_row, run_cli};
use sf_graph::failure::{max_tolerable_fraction, FailureConfig, Property};
use slimfly::prelude::*;

fn main() {
    run_cli(|args| {
        let size: usize = args.value("size", 1024)?;
        let samples: usize = args.value("samples", 32)?;

        let cfg = FailureConfig {
            min_samples: samples / 2,
            max_samples: samples,
            distance_sources: 48,
            ..Default::default()
        };

        print_csv_row(&[
            "topology".into(),
            "endpoints".into(),
            "diameter".into(),
            "max_removal_fraction".into(),
        ]);
        for topo in spec::roster(size) {
            let net = topo.build()?;
            let d0 = match metrics::diameter(&net.graph) {
                Some(d) => d,
                None => continue,
            };
            let frac = max_tolerable_fraction(&net.graph, Property::DiameterAtMost(d0 + 2), &cfg);
            print_csv_row(&[
                net.name.clone(),
                net.num_endpoints().to_string(),
                d0.to_string(),
                format!("{:.0}%", frac * 100.0),
            ]);
        }
        Ok(())
    })
}
