//! Figures 11c/12c/13c: total network cost vs network size for all
//! topologies, under the three cable-pricing families.
//!
//! Usage: `fig11c_total_cost [--sizes 256,512,1024,...] [--model fdr10|qdr56|sfp10|all]`
//! Output: CSV `model,topology,endpoints,routers,total_cost,cost_per_node`.
//! Paper shape: SF cheapest overall (~50% below FT-3, ~25% below DF at
//! 10K endpoints); low-radix topologies (tori, HC, LH) most expensive
//! per node.

use sf_bench::{print_csv_row, run_cli};
use slimfly::prelude::*;

fn main() {
    run_cli(|args| {
        let sizes = args.list("sizes", &[512usize, 1024, 2048, 4096, 10_000])?;
        let which = args.get("model").unwrap_or("fdr10");
        let models: Vec<CostModel> = match which {
            "fdr10" => vec![CostModel::fdr10()],
            "qdr56" => vec![CostModel::qdr56()],
            "sfp10" => vec![CostModel::sfp10()],
            "all" => vec![CostModel::fdr10(), CostModel::qdr56(), CostModel::sfp10()],
            other => {
                return Err(SfError::Cli(format!(
                    "--model: expected fdr10|qdr56|sfp10|all, got {other:?}"
                )))
            }
        };

        print_csv_row(&[
            "model".into(),
            "topology".into(),
            "endpoints".into(),
            "routers".into(),
            "total_cost".into(),
            "cost_per_node".into(),
        ]);
        for &n in &sizes {
            for topo in spec::roster(n) {
                let net = topo.build()?;
                for m in &models {
                    let b = CostBreakdown::compute(&net, m);
                    print_csv_row(&[
                        m.name.into(),
                        net.name.clone(),
                        b.n.to_string(),
                        b.nr.to_string(),
                        format!("{:.0}", b.total_cost()),
                        format!("{:.0}", b.cost_per_endpoint()),
                    ]);
                }
            }
        }
        Ok(())
    })
}
