//! §IX: the expander explanation of Slim Fly's resiliency — normalized
//! two-sided spectral gaps of the regular topologies.
//!
//! Usage: `expander_gap [--size 512]`
//! Output: CSV `topology,routers,degree,lambda2,normalized,ramanujan`.
//! Expected shape: SF close to the Ramanujan bound (near-optimal
//! expander); tori/hypercubes near 1.0 (poor expanders); DLN close to
//! SF (random regular graphs are near-Ramanujan).

use sf_bench::{f, print_csv_row, run_cli};
use sf_graph::spectral::spectral_gap;
use slimfly::prelude::*;

fn main() {
    run_cli(|args| {
        let size: usize = args.value("size", 512)?;

        print_csv_row(&[
            "topology".into(),
            "routers".into(),
            "degree".into(),
            "lambda2".into(),
            "normalized".into(),
            "ramanujan_bound".into(),
        ]);
        for topo in spec::roster(size) {
            let net = topo.build()?;
            if !net.graph.is_regular() {
                continue; // fat trees etc. are out of scope for this metric
            }
            let s = spectral_gap(&net.graph, 500, 17);
            print_csv_row(&[
                net.name.clone(),
                net.num_routers().to_string(),
                format!("{:.0}", s.degree),
                f(s.lambda2),
                f(s.normalized()),
                f(s.ramanujan_bound()),
            ]);
        }
        Ok(())
    })
}
