//! Figure 5b: router counts vs the Moore bound for diameter-3
//! constructions — BDF and Delorme (Slim Fly variants) vs Dragonfly and
//! 3-level flattened butterfly.
//!
//! Usage: `fig5b_moore3 [--umax 64]`
//! Output: CSV `series,kprime,nr,frac_of_mb3`.
//! Paper checkpoints: DEL ≈ 68%, BDF ≈ 30%, DF ≈ 14%, FBF-3 ≈ 4.9% of
//! MB(k', 3).

use sf_arith::prime::prime_powers_up_to;
use sf_bench::{f, print_csv_row, run_cli};
use sf_topo::bdf::{bdf_network_radix, bdf_routers};
use sf_topo::delorme::{del_network_radix, del_routers};
use sf_topo::dragonfly::Dragonfly;
use sf_topo::moore::moore_bound;

fn main() {
    run_cli(|args| {
        let umax: u64 = args.value("umax", 64)?;

        print_csv_row(&[
            "series".into(),
            "kprime".into(),
            "nr".into(),
            "frac_of_mb3".into(),
        ]);
        let row = |series: &str, kp: u64, nr: u64| {
            let mb = moore_bound(kp, 3);
            print_csv_row(&[
                series.into(),
                kp.to_string(),
                nr.to_string(),
                f(nr as f64 / mb as f64),
            ]);
        };

        // BDF: odd prime powers u → k' = 3(u+1)/2.
        for u in prime_powers_up_to(umax).into_iter().filter(|&u| u % 2 == 1) {
            let kp = bdf_network_radix(u);
            row("SF-BDF", kp, bdf_routers(kp));
        }
        // Delorme: prime powers v → k' = (v+1)².
        for v in prime_powers_up_to(9) {
            row("SF-DEL", del_network_radix(v), del_routers(v));
        }
        // Dragonfly balanced: k' = h + a − 1 = 3p − 1.
        for p in 1..=33u32 {
            let df = Dragonfly::balanced(p);
            let kp = (df.h + df.a - 1) as u64;
            row("Dragonfly", kp, df.num_routers() as u64);
        }
        // FBF-3: k' = 3(c−1).
        for c in 2..=33u64 {
            row("FBF-3", 3 * (c - 1), c * c * c);
        }
        Ok(())
    })
}
