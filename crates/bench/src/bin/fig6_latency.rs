//! Figure 6: latency vs offered load for SF (MIN, VAL, UGAL-L, UGAL-G),
//! DF (UGAL-L) and FT-3 (ANCA) under four traffic patterns.
//!
//! A thin wrapper over the checked-in `figures/fig6.toml` experiment
//! file (the figure is data; `sf-bench run figures/fig6.toml` executes
//! it unmodified). Flags apply documented overrides to the parsed plan:
//!
//!   `fig6_latency [--traffic uniform|bitrev|shift|shuffle|bitcomp|worst]
//!                 [--large] [--loads 0.1,0.2,...] [--ugal-paths 4]
//!                 [--val-cap3] [--routing min,ugal-l:c=4,...]
//!                 [--packet-size 4] [--backend cycle|flow] [--workers N]`
//!
//! `--routing` overrides the Slim Fly scheme list with any
//! comma-separated `RoutingSpec` strings (e.g. `fatpaths:layers=3`).
//!
//! `--backend flow` swaps every sweep onto the max-min fair-share
//! flow tier — same records, milliseconds instead of minutes. The
//! file's FT-3 sweep routes with per-flit adaptive ECMP (ANCA), which
//! the flow model cannot express: without `--routing` that combination
//! is rejected with a typed error; with `--routing` the scheme list
//! applies to *every* sweep (not just the Slim Fly one), so
//! `--backend flow --routing min,ugal-l:c=4` compares flow-expressible
//! schemes across all three topologies.
//!
//! `--large` substitutes the paper-size N ≈ 10K networks (SF q=19,
//! DF p=7, FT p=22) and the §V measurement windows; the file's default
//! is the ~500-endpoint class, which §V notes behaves within ~10% of
//! the 10K results.
//!
//! Output: the shared experiment-record CSV schema, streamed as jobs
//! finish on the work-stealing scheduler.

use sf_bench::{run_cli, run_plan_stdout};
use slimfly::prelude::*;

const FIG6_TOML: &str = include_str!("../../../../figures/fig6.toml");

fn main() {
    run_cli(|args| {
        let mut plan = ExperimentPlan::from_toml_str(FIG6_TOML)?;
        // Overrides apply only when their flag is actually present —
        // with no flags the run is exactly the checked-in file (the
        // file, not this binary, is the source of truth for defaults).
        let traffic = args.get("traffic").map(str::to_string);
        let traffic = traffic
            .as_deref()
            .map(str::parse::<TrafficSpec>)
            .transpose()?;
        let large = args.flag("large");
        let ugal_paths: Option<usize> = match args.get("ugal-paths") {
            Some(_) => Some(args.value("ugal-paths", 4)?),
            None => None,
        };
        let val_cap3 = args.flag("val-cap3");
        let workers: usize = args.value("workers", 0)?;
        let loads: Option<Vec<f64>> = match (args.get("loads"), traffic) {
            (Some(_), _) => Some(args.list("loads", &[])?),
            // Worst-case traffic needs its own grid: the file's uniform
            // load list saturates the adversary everywhere.
            (None, Some(TrafficSpec::WorstCase)) => Some(vec![
                0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5,
            ]),
            (None, _) => None,
        };

        if large {
            // Network class (§V): SF k=44/p=15, DF k=27/p=7, FT k=44/p=22.
            let upsize = [
                ("sf:q=7", "sf:q=19"),
                ("df:p=3", "df:p=7"),
                ("ft3:p=8", "ft3:p=22"),
            ];
            let mut upsized = 0;
            for sweep in &mut plan.sweeps {
                for topo in &mut sweep.topos {
                    let s = topo.to_string();
                    if let Some((_, big)) = upsize.iter().find(|(small, _)| *small == s) {
                        *topo = big.parse()?;
                        upsized += 1;
                    }
                }
                sweep.sim.warmup = 2_000;
                sweep.sim.measure = 4_000;
                sweep.sim.drain = 8_000;
            }
            if upsized == 0 {
                // Fail loudly rather than stamping §V windows on the
                // small class: the file's topologies no longer match
                // the known small→large mapping.
                return Err(SfError::Experiment(
                    "--large found none of the expected quick-size topologies \
                     (sf:q=7, df:p=3, ft3:p=8) in figures/fig6.toml — update \
                     the upsize table in fig6_latency to match the file"
                        .into(),
                ));
            }
        }
        let packet_size = args.packet_size()?;
        let backend: Option<Backend> = args.get("backend").map(str::parse).transpose()?;
        for sweep in &mut plan.sweeps {
            if let Some(t) = traffic {
                sweep.traffic = t;
            }
            if let Some(l) = &loads {
                sweep.loads = l.clone();
            }
            if let Some(ps) = packet_size {
                sweep.sim.packet_size = ps;
            }
            if let Some(b) = backend {
                sweep.backend = b;
            }
            for r in &mut sweep.routings {
                match r {
                    RoutingSpec::UgalL { candidates } | RoutingSpec::UgalG { candidates } => {
                        if let Some(c) = ugal_paths {
                            *candidates = c;
                        }
                    }
                    RoutingSpec::Valiant { cap3 } if val_cap3 => *cap3 = true,
                    _ => {}
                }
            }
        }
        // The SF sweep is the file's first; --routing replaces its
        // scheme list (DF stays UGAL-L, FT stays ECMP, as in Fig 6).
        // Under --backend flow an explicit --routing applies to every
        // sweep instead: the file's FT-3 ANCA scheme has no fluid
        // lowering, so keeping it would reject the whole plan.
        plan.sweeps[0].routings = args.routing("routing", &plan.sweeps[0].routings.clone())?;
        if args.get("routing").is_some() && backend == Some(Backend::Flow) {
            let list = plan.sweeps[0].routings.clone();
            for sweep in plan.sweeps.iter_mut().skip(1) {
                sweep.routings = list.clone();
            }
        }

        run_plan_stdout(&plan, workers)?;
        Ok(())
    })
}
