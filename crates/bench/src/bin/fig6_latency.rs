//! Figure 6: latency vs offered load for SF (MIN, VAL, UGAL-L, UGAL-G),
//! DF (UGAL-L) and FT-3 (ANCA) under four traffic patterns.
//!
//! Usage:
//!   `fig6_latency [--traffic uniform|bitrev|shift|shuffle|bitcomp|worst]
//!                 [--large] [--loads 0.1,0.2,...] [--ugal-paths 4]
//!                 [--val-cap3]`
//!
//! `--large` runs the paper-size N ≈ 10K networks (SF q=19, DF p=7,
//! FT p=22); the default uses the ~500-endpoint class (SF q=7, DF p=3,
//! FT p=8), which §V notes behaves within ~10% of the 10K results.
//!
//! Output: CSV `network,routing,traffic,offered,latency,p99,accepted,saturated`.

use sf_bench::{f, print_csv_row};
use sf_routing::{RouteAlgo, RoutingTables};
use sf_sim::{LoadSweep, SimConfig};
use sf_topo::dragonfly::Dragonfly;
use sf_topo::fattree::FatTree3;
use sf_topo::{Network, SlimFly};
use sf_traffic::TrafficPattern;

fn pattern_for(net: &Network, tables: &RoutingTables, traffic: &str) -> TrafficPattern {
    let n = net.num_endpoints() as u32;
    match traffic {
        "uniform" => TrafficPattern::uniform(n),
        "bitrev" => TrafficPattern::bit_reversal(n),
        "bitcomp" => TrafficPattern::bit_complement(n),
        "shuffle" => TrafficPattern::shuffle(n),
        "shift" => TrafficPattern::shift(n),
        "worst" => match net.kind {
            sf_topo::TopologyKind::SlimFly { .. } => {
                TrafficPattern::worst_case_slimfly(net, tables)
            }
            sf_topo::TopologyKind::Dragonfly { .. } => TrafficPattern::worst_case_dragonfly(net),
            sf_topo::TopologyKind::FatTree3 { .. } => TrafficPattern::worst_case_fattree(net),
            _ => TrafficPattern::uniform(n),
        },
        other => panic!("unknown traffic pattern {other}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let traffic = get("--traffic").unwrap_or_else(|| "uniform".into());
    let large = args.iter().any(|a| a == "--large");
    let ugal_paths: usize = get("--ugal-paths").and_then(|s| s.parse().ok()).unwrap_or(4);
    let val_cap3 = args.iter().any(|a| a == "--val-cap3");
    let loads: Vec<f64> = get("--loads")
        .map(|s| s.split(',').filter_map(|v| v.parse().ok()).collect())
        .unwrap_or_else(|| {
            if traffic == "worst" {
                vec![0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5]
            } else {
                vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
            }
        });

    // Network class (§V): SF k=44/p=15, DF k=27/p=7, FT k=44/p=22 for
    // --large; scaled-down equivalents otherwise.
    let (sf, df, ft) = if large {
        (SlimFly::new(19).unwrap(), Dragonfly::balanced(7), FatTree3 { p: 22, full: false })
    } else {
        (SlimFly::new(7).unwrap(), Dragonfly::balanced(3), FatTree3 { p: 8, full: false })
    };
    let cfg = if large {
        SimConfig { warmup: 2_000, measure: 4_000, drain: 8_000, ..Default::default() }
    } else {
        SimConfig { warmup: 1_000, measure: 2_000, drain: 6_000, ..Default::default() }
    };

    print_csv_row(&[
        "network".into(),
        "routing".into(),
        "traffic".into(),
        "offered".into(),
        "latency".into(),
        "p99".into(),
        "accepted".into(),
        "saturated".into(),
    ]);

    let sf_net = sf.network();
    let sf_tables = RoutingTables::new(&sf_net.graph);
    let sf_algos = [
        RouteAlgo::Min,
        RouteAlgo::Valiant { cap3: val_cap3 },
        RouteAlgo::UgalL { candidates: ugal_paths },
        RouteAlgo::UgalG { candidates: ugal_paths },
    ];
    let mut jobs: Vec<(Network, RoutingTables, RouteAlgo)> = Vec::new();
    for algo in sf_algos {
        jobs.push((sf_net.clone(), sf_tables.clone(), algo));
    }
    let df_net = df.network();
    let df_tables = RoutingTables::new(&df_net.graph);
    jobs.push((df_net, df_tables, RouteAlgo::UgalL { candidates: ugal_paths }));
    let ft_net = ft.network();
    let ft_tables = RoutingTables::new(&ft_net.graph);
    jobs.push((ft_net, ft_tables, RouteAlgo::AdaptiveEcmp));

    for (net, tables, algo) in &jobs {
        let pattern = pattern_for(net, tables, &traffic);
        // Valiant detours on diameter-3 topologies reach 6 hops; give
        // those runs enough VCs for a strictly increasing assignment.
        let mut job_cfg = cfg;
        if matches!(net.kind, sf_topo::TopologyKind::Dragonfly { .. }) {
            job_cfg.num_vcs = 6;
        }
        let results = LoadSweep::run(net, tables, *algo, &pattern, &loads, job_cfg);
        for r in results {
            print_csv_row(&[
                net.name.clone(),
                algo.label().into(),
                traffic.clone(),
                f(r.offered_load),
                f(r.avg_latency),
                f(r.p99_latency),
                f(r.accepted),
                r.saturated.to_string(),
            ]);
        }
    }
}
