//! Figure 6: latency vs offered load for SF (MIN, VAL, UGAL-L, UGAL-G),
//! DF (UGAL-L) and FT-3 (ANCA) under four traffic patterns.
//!
//! Usage:
//!   `fig6_latency [--traffic uniform|bitrev|shift|shuffle|bitcomp|worst]
//!                 [--large] [--loads 0.1,0.2,...] [--ugal-paths 4]
//!                 [--val-cap3] [--routing min,ugal-l:c=4,...]`
//!
//! `--routing` overrides the Slim Fly scheme list with any
//! comma-separated `RoutingSpec` strings (e.g. `fatpaths:layers=3`).
//!
//! `--large` runs the paper-size N ≈ 10K networks (SF q=19, DF p=7,
//! FT p=22); the default uses the ~500-endpoint class (SF q=7, DF p=3,
//! FT p=8), which §V notes behaves within ~10% of the 10K results.
//!
//! Output: the shared experiment-record CSV schema.

use sf_bench::{print_records, run_cli};
use slimfly::prelude::*;

fn main() {
    run_cli(|args| {
        let traffic = args.traffic("traffic", TrafficSpec::Uniform)?;
        let large = args.flag("large");
        let ugal_paths: usize = args.value("ugal-paths", 4)?;
        let val_cap3 = args.flag("val-cap3");
        let default_loads: Vec<f64> = if traffic == TrafficSpec::WorstCase {
            vec![0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5]
        } else {
            vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
        };
        let loads = args.list("loads", &default_loads)?;

        // Network class (§V): SF k=44/p=15, DF k=27/p=7, FT k=44/p=22
        // for --large; scaled-down equivalents otherwise.
        let (sf, df, ft): (TopologySpec, TopologySpec, TopologySpec) = if large {
            ("sf:q=19".parse()?, "df:p=7".parse()?, "ft3:p=22".parse()?)
        } else {
            ("sf:q=7".parse()?, "df:p=3".parse()?, "ft3:p=8".parse()?)
        };
        let cfg = if large {
            SimConfig {
                warmup: 2_000,
                measure: 4_000,
                drain: 8_000,
                ..Default::default()
            }
        } else {
            SimConfig {
                warmup: 1_000,
                measure: 2_000,
                drain: 6_000,
                ..Default::default()
            }
        };

        let sf_routings = args.routing(
            "routing",
            &[
                RoutingSpec::Min,
                RoutingSpec::Valiant { cap3: val_cap3 },
                RoutingSpec::UgalL {
                    candidates: ugal_paths,
                },
                RoutingSpec::UgalG {
                    candidates: ugal_paths,
                },
            ],
        )?;

        let experiments = [
            Experiment::on(sf)
                .routings(&sf_routings)
                .traffic(traffic)
                .loads(&loads)
                .sim(cfg),
            // Valiant detours on the diameter-3 Dragonfly reach 6 hops;
            // give those runs enough VCs for a strictly increasing
            // assignment.
            Experiment::on(df)
                .routing(RoutingSpec::UgalL {
                    candidates: ugal_paths,
                })
                .traffic(traffic)
                .loads(&loads)
                .sim(cfg)
                .num_vcs(6),
            Experiment::on(ft)
                .routing(RoutingSpec::Ecmp)
                .traffic(traffic)
                .loads(&loads)
                .sim(cfg),
        ];

        let mut records = Vec::new();
        for exp in experiments {
            records.extend(exp.run()?);
        }
        print_records(&records);
        Ok(())
    })
}
