//! # sf-bench — benchmark harness for the Slim Fly paper
//!
//! One binary per table/figure of the paper's evaluation (see DESIGN.md
//! §3 for the experiment index and EXPERIMENTS.md for paper-vs-measured
//! results). This library hosts the shared roster of comparison
//! topologies and small output helpers.

use sf_topo::dragonfly::Dragonfly;
use sf_topo::fattree::FatTree3;
use sf_topo::flatbutterfly::FlattenedButterfly;
use sf_topo::hypercube::Hypercube;
use sf_topo::longhop::LongHop;
use sf_topo::random_dln::RandomDln;
use sf_topo::torus::Torus;
use sf_topo::{Network, SlimFly};

/// Default RNG seed for random constructions in benches.
pub const BENCH_SEED: u64 = 0x5F1A_2014;

/// Builds the full roster of comparison topologies (Table II) sized as
/// close as possible to `target_n` endpoints, in their balanced
/// configurations. Constructions whose parameter grid cannot reach
/// `target_n` within a factor of ~2 are skipped.
pub fn roster(target_n: usize) -> Vec<Network> {
    let mut nets = Vec::new();

    // Slim Fly: smallest balanced config with N ≥ target (or largest below).
    if let Some(cfg) = slimfly_near(target_n) {
        nets.push(cfg.network());
    }
    // Dragonfly balanced.
    if let Some(df) = dragonfly_near(target_n) {
        nets.push(df.network());
    }
    // Fat tree (§V slim variant).
    if let Some(ft) = fattree_near(target_n) {
        nets.push(ft.network());
    }
    // Flattened butterfly 3-flat.
    if let Some(f) = fbf3_near(target_n) {
        nets.push(f.network());
    }
    // Tori (p = 1): router count = endpoint count.
    nets.push(Torus::cubic_3d(target_n).network());
    nets.push(Torus::cubic_5d(target_n).network());
    // Hypercube and Long Hop (p = 1).
    nets.push(Hypercube::at_least(target_n).network());
    nets.push(LongHop::at_least(target_n).network());
    // Random DLN with radix comparable to the Slim Fly's.
    let kp = nets
        .first()
        .map(|n| n.graph.max_degree() as u32)
        .unwrap_or(11);
    let dln = dln_near(target_n, kp);
    nets.push(dln.network());

    nets
}

/// Smallest balanced Slim Fly with `N ≥ target` (falls back to the
/// largest below the target when none reach it).
pub fn slimfly_near(target_n: usize) -> Option<SlimFly> {
    let qmax = ((target_n as f64).sqrt() as u32 + 8) * 2;
    let qs = SlimFly::admissible_q_up_to(qmax);
    let mut best: Option<(usize, SlimFly)> = None;
    for q in qs {
        let sf = SlimFly::new(q).ok()?;
        let n = sf.balanced_concentration() as usize * sf.num_routers();
        let diff = n.abs_diff(target_n);
        if best.as_ref().is_none_or(|(d, _)| diff < *d) {
            best = Some((diff, sf));
        }
    }
    best.map(|(_, sf)| sf)
}

/// Balanced Dragonfly closest to `target` endpoints.
pub fn dragonfly_near(target_n: usize) -> Option<Dragonfly> {
    (1..200u32)
        .map(Dragonfly::balanced)
        .min_by_key(|df| df.num_endpoints().abs_diff(target_n))
}

/// §V fat tree closest to `target` endpoints.
pub fn fattree_near(target_n: usize) -> Option<FatTree3> {
    (2..200u32)
        .map(|p| FatTree3 { p, full: false })
        .min_by_key(|ft| ft.num_endpoints().abs_diff(target_n))
}

/// Balanced FBF-3 closest to `target` endpoints.
pub fn fbf3_near(target_n: usize) -> Option<FlattenedButterfly> {
    (2..60u32)
        .map(|c| FlattenedButterfly { c, dims: 3, p: c })
        .min_by_key(|f| f.num_endpoints().abs_diff(target_n))
}

/// DLN with network radix matching `k_prime` and ≥ target endpoints.
pub fn dln_near(target_n: usize, k_prime: u32) -> RandomDln {
    let y = k_prime.saturating_sub(2).max(1);
    // p is solved internally; iterate router count to reach target N.
    let mut nr = 64usize;
    loop {
        let dln = RandomDln::new(nr, y, BENCH_SEED);
        if dln.p as usize * nr >= target_n || nr > 4 * target_n {
            return dln;
        }
        nr = (nr + nr / 2 + 2) & !1; // grow ~1.5x, keep even
    }
}

/// Prints a CSV header + row helper (stdout tables consumed by
/// EXPERIMENTS.md).
pub fn print_csv_row(cols: &[String]) {
    println!("{}", cols.join(","));
}

/// Formats a float with fixed precision for CSV output.
pub fn f(v: f64) -> String {
    if v.is_nan() {
        "nan".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_builds_all_topologies_small() {
        let nets = roster(256);
        assert!(nets.len() >= 8, "got {} topologies", nets.len());
        for n in &nets {
            assert!(n.num_endpoints() > 0, "{}", n.name);
            assert!(
                sf_graph::metrics::is_connected(&n.graph),
                "{} disconnected",
                n.name
            );
        }
    }

    #[test]
    fn slimfly_near_paper_size() {
        let sf = slimfly_near(10_000).unwrap();
        assert_eq!(sf.q(), 19);
    }

    #[test]
    fn dragonfly_near_paper_size() {
        let df = dragonfly_near(9_702).unwrap();
        assert_eq!(df.p, 7); // the paper's k = 27 DF
    }

    #[test]
    fn fattree_near_paper_size() {
        let ft = fattree_near(10_648).unwrap();
        assert_eq!(ft.p, 22);
    }

    #[test]
    fn dln_reaches_target() {
        let dln = dln_near(500, 11);
        assert!(dln.p as usize * dln.nr >= 500);
    }
}
