//! # sf-bench — benchmark harness for the Slim Fly paper
//!
//! One binary per table/figure of the paper's evaluation. Every binary
//! is a thin declarative program over the `slimfly` experiment API:
//! topologies come from [`slimfly::spec::TopologySpec`] (and the
//! [`slimfly::spec::roster`] registry), sweeps run through
//! [`slimfly::experiment::Experiment`], and flags are parsed by the
//! shared [`SweepArgs`] parser — no per-binary argument scanning or
//! topology dispatch.

use slimfly::prelude::*;
use slimfly::spec;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::str::FromStr;

/// Default RNG seed for random constructions in benches.
pub const BENCH_SEED: u64 = spec::DEFAULT_SEED;

/// Writes one stdout line, exiting quietly when the consumer hung up
/// (`bench | head` must not panic with a broken-pipe backtrace).
fn print_line(line: std::fmt::Arguments<'_>) {
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    if let Err(e) = out.write_fmt(format_args!("{line}\n")) {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        panic!("stdout write failed: {e}");
    }
}

/// Prints one already-formatted CSV line verbatim (for callers that
/// compose rows from pre-quoted pieces, e.g. a prefix column plus
/// [`Record::to_csv`] — routing those through [`print_csv_row`] would
/// re-quote the whole line as one field).
pub fn print_raw_line(line: &str) {
    print_line(format_args!("{line}"));
}

/// Prints a CSV header + row helper (stdout tables consumed by
/// EXPERIMENTS.md). Fields containing commas are RFC 4180-quoted.
pub fn print_csv_row(cols: &[String]) {
    let escaped: Vec<String> = cols
        .iter()
        .map(|c| slimfly::experiment::csv_field(c))
        .collect();
    print_line(format_args!("{}", escaped.join(",")));
}

/// Formats a float with fixed precision for CSV output (the shared
/// [`slimfly::experiment::fmt_float`] convention).
pub fn f(v: f64) -> String {
    slimfly::experiment::fmt_float(v)
}

/// Prints experiment records as a CSV table (header + rows).
pub fn print_records(records: &[Record]) {
    print_line(format_args!("{}", Record::CSV_HEADER));
    for r in records {
        print_line(format_args!("{}", r.to_csv()));
    }
}

/// A [`slimfly::sink::RecordSink`] that streams CSV rows to stdout as
/// jobs finish (broken-pipe-safe like every bench binary) and
/// optionally keeps a copy of the records for post-processing (report
/// generation, parity checks).
#[derive(Default)]
pub struct StdoutCsvSink {
    /// Suppress stdout (still collects when `collect` is set).
    pub quiet: bool,
    /// Keep records in [`StdoutCsvSink::records`].
    pub collect: bool,
    /// Collected records (when `collect`).
    pub records: Vec<Record>,
}

impl slimfly::sink::RecordSink for StdoutCsvSink {
    fn begin(&mut self) -> Result<(), SfError> {
        if !self.quiet {
            print_raw_line(Record::CSV_HEADER);
        }
        Ok(())
    }

    fn record(&mut self, r: &Record) -> Result<(), SfError> {
        if !self.quiet {
            print_raw_line(&r.to_csv());
        }
        if self.collect {
            self.records.push(r.clone());
        }
        Ok(())
    }
}

/// Runs a plan through the work-stealing scheduler, streaming CSV to
/// stdout, and returns the schedule report — the shared execution path
/// of the figure wrapper binaries (records stream; nothing is
/// buffered).
pub fn run_plan_stdout(
    plan: &slimfly::ExperimentPlan,
    workers: usize,
) -> Result<slimfly::schedule::ScheduleReport, SfError> {
    let mut set = plan.expand()?;
    let mut sink = StdoutCsvSink {
        quiet: false,
        collect: false,
        records: Vec::new(),
    };
    slimfly::Scheduler::new(workers).run(&mut set, &mut sink)
}

/// Runs a bench body with parsed [`SweepArgs`], reporting any
/// [`SfError`] on stderr with a non-zero exit code — the shared `main`
/// of every binary in this crate. After the body succeeds, any
/// `--flag` the body never queried is reported as an unknown flag
/// (so `--trafic` typos fail loudly instead of silently producing the
/// default sweep).
pub fn run_cli(body: impl FnOnce(&SweepArgs) -> Result<(), SfError>) {
    let args = SweepArgs::parse();
    let result = body(&args).and_then(|()| args.check_unknown_flags());
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}

/// The shared CLI parser for sweep binaries.
///
/// Grammar: boolean flags (`--large`), valued flags (`--size 1024`),
/// comma-separated lists (`--loads 0.1,0.2`), [`TopologySpec`] flags
/// (`--topo sf:q=19`), [`TrafficSpec`] flags (`--traffic worst`), and
/// bare positional values *before* any flag (`datacenter_design 4096`).
/// Unknown or malformed values surface as typed [`SfError::Cli`] /
/// parse errors, never panics.
#[derive(Clone, Debug, Default)]
pub struct SweepArgs {
    argv: Vec<String>,
    /// Flag names the program has queried — the recognized-flag set
    /// for [`SweepArgs::check_unknown_flags`].
    queried: RefCell<BTreeSet<String>>,
}

impl SweepArgs {
    /// Parses the process arguments (excluding the program name).
    pub fn parse() -> Self {
        SweepArgs::from_vec(std::env::args().skip(1).collect())
    }

    /// Builds from an explicit vector (tests).
    pub fn from_vec(argv: Vec<String>) -> Self {
        SweepArgs {
            argv,
            queried: RefCell::new(BTreeSet::new()),
        }
    }

    fn note(&self, name: &str) {
        self.queried.borrow_mut().insert(name.to_string());
    }

    /// True when the boolean flag `--name` is present.
    pub fn flag(&self, name: &str) -> bool {
        self.note(name);
        let tag = format!("--{name}");
        self.argv.contains(&tag)
    }

    /// Raw value of `--name`, when present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.note(name);
        let tag = format!("--{name}");
        self.argv
            .iter()
            .position(|a| *a == tag)
            .and_then(|i| self.argv.get(i + 1))
            .map(String::as_str)
    }

    /// The `idx`-th bare positional argument (0-based). Positionals
    /// must precede any `--flag`: the scan stops at the first flag
    /// token, since flag arity is unknowable here.
    pub fn positional(&self, idx: usize) -> Option<&str> {
        self.argv
            .iter()
            .take_while(|a| !a.starts_with("--"))
            .nth(idx)
            .map(String::as_str)
    }

    /// Value of `--name` parsed as `T`, or `default` when absent.
    pub fn value<T: FromStr>(&self, name: &str, default: T) -> Result<T, SfError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<T>()
                .map_err(|_| SfError::Cli(format!("--{name}: cannot parse {raw:?}"))),
        }
    }

    /// Comma-separated list value of `--name`, or `default` when absent.
    pub fn list<T: FromStr + Clone>(&self, name: &str, default: &[T]) -> Result<Vec<T>, SfError> {
        match self.get(name) {
            None => Ok(default.to_vec()),
            Some(raw) => raw
                .split(',')
                .map(|v| {
                    v.parse::<T>().map_err(|_| {
                        SfError::Cli(format!("--{name}: cannot parse list item {v:?}"))
                    })
                })
                .collect(),
        }
    }

    /// Topology spec value of `--name`, or `default` (itself parsed)
    /// when absent.
    pub fn spec(&self, name: &str, default: &str) -> Result<TopologySpec, SfError> {
        self.get(name).unwrap_or(default).parse()
    }

    /// Traffic spec value of `--name`, or `default` when absent.
    pub fn traffic(&self, name: &str, default: TrafficSpec) -> Result<TrafficSpec, SfError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => Ok(raw.parse::<TrafficSpec>().map_err(SfError::from)?),
        }
    }

    /// Routing-spec list value of `--name` — comma-separated
    /// [`RoutingSpec`] strings (`--routing min,ugal-l:c=4,fatpaths:layers=3`)
    /// — or `default` when absent. Malformed schemes surface as typed
    /// routing errors (`ugal-l:c=0` fails here, not mid-sweep).
    pub fn routing(
        &self,
        name: &str,
        default: &[RoutingSpec],
    ) -> Result<Vec<RoutingSpec>, SfError> {
        match self.get(name) {
            None => Ok(default.to_vec()),
            Some(raw) => raw
                .split(',')
                .map(|v| v.parse::<RoutingSpec>().map_err(SfError::from))
                .collect(),
        }
    }

    /// Value of `--packet-size` (flits per packet) when present — the
    /// shared multi-flit override of the figure wrappers: sizes > 1
    /// run the sweep under wormhole flow control. `0` is a typed error
    /// here, not a mid-sweep panic.
    pub fn packet_size(&self) -> Result<Option<usize>, SfError> {
        match self.get("packet-size") {
            None => Ok(None),
            Some(raw) => {
                let ps: usize = raw
                    .parse()
                    .map_err(|_| SfError::Cli(format!("--packet-size: cannot parse {raw:?}")))?;
                if !(1..=slimfly::sim::MAX_PACKET_SIZE).contains(&ps) {
                    return Err(SfError::Cli(format!(
                        "--packet-size must be in 1..={} flits, got {ps}",
                        slimfly::sim::MAX_PACKET_SIZE
                    )));
                }
                Ok(Some(ps))
            }
        }
    }

    /// Errors on any `--flag` in the argv the program never queried —
    /// typo protection, called by [`run_cli`] after the body returns.
    pub fn check_unknown_flags(&self) -> Result<(), SfError> {
        let queried = self.queried.borrow();
        for token in &self.argv {
            if let Some(name) = token.strip_prefix("--") {
                if !queried.contains(name) {
                    let known: Vec<String> = queried.iter().map(|n| format!("--{n}")).collect();
                    return Err(SfError::Cli(format!(
                        "unknown flag --{name} (this binary accepts: {})",
                        known.join(", ")
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> SweepArgs {
        SweepArgs::from_vec(s.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn sweep_args_flags_values_lists() {
        let a = args(&["--large", "--size", "512", "--loads", "0.1,0.5"]);
        assert!(a.flag("large"));
        assert!(!a.flag("small"));
        assert_eq!(a.value("size", 0usize).unwrap(), 512);
        assert_eq!(a.value("missing", 7u32).unwrap(), 7);
        assert_eq!(a.list("loads", &[0.9f64]).unwrap(), vec![0.1, 0.5]);
        assert_eq!(a.list("missing", &[0.9f64]).unwrap(), vec![0.9]);
    }

    #[test]
    fn sweep_args_typed_errors() {
        let a = args(&["--size", "many"]);
        assert!(matches!(
            a.value("size", 0usize).unwrap_err(),
            SfError::Cli(_)
        ));
        let a = args(&["--topo", "zz:q=1"]);
        assert!(a.spec("topo", "sf:q=5").is_err());
        let a = args(&["--traffic", "wurst"]);
        assert!(matches!(
            a.traffic("traffic", TrafficSpec::Uniform).unwrap_err(),
            SfError::Traffic(_)
        ));
    }

    #[test]
    fn sweep_args_routing_lists() {
        let a = args(&["--routing", "min,ugal-l:c=4,fatpaths:layers=2"]);
        assert_eq!(
            a.routing("routing", &[RoutingSpec::Min]).unwrap(),
            vec![
                RoutingSpec::Min,
                RoutingSpec::UgalL { candidates: 4 },
                RoutingSpec::FatPaths { layers: 2 },
            ]
        );
        let a = args(&[]);
        assert_eq!(
            a.routing("routing", &[RoutingSpec::Ecmp]).unwrap(),
            vec![RoutingSpec::Ecmp]
        );
        let a = args(&["--routing", "ugal-l:c=0"]);
        assert!(matches!(
            a.routing("routing", &[]).unwrap_err(),
            SfError::Routing(_)
        ));
    }

    #[test]
    fn sweep_args_spec_and_positional() {
        let a = args(&["--topo", "df:p=3"]);
        assert_eq!(
            a.spec("topo", "sf:q=5").unwrap(),
            TopologySpec::dragonfly_balanced(3)
        );
        assert_eq!(a.spec("other", "sf:q=5").unwrap(), TopologySpec::slimfly(5));

        // Positionals come before flags; the scan stops at the first
        // flag token.
        let a = args(&["4096", "extra", "--size", "512"]);
        assert_eq!(a.positional(0), Some("4096"));
        assert_eq!(a.positional(1), Some("extra"));
        assert_eq!(a.positional(2), None);
        let a = args(&["--size", "512", "late"]);
        assert_eq!(a.positional(0), None);
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let a = args(&["--trafic", "worst"]);
        let _ = a.traffic("traffic", TrafficSpec::Uniform);
        let err = a.check_unknown_flags().unwrap_err();
        assert!(matches!(err, SfError::Cli(_)), "{err}");
        assert!(err.to_string().contains("--trafic"));
        assert!(
            err.to_string().contains("--traffic"),
            "suggests known flags"
        );

        let a = args(&["--traffic", "worst"]);
        let _ = a.traffic("traffic", TrafficSpec::Uniform);
        assert!(a.check_unknown_flags().is_ok());
    }
}
