//! Criterion micro-benchmarks: construction speed, routing-table builds,
//! partitioner quality/throughput, and simulator cycle rate.
//!
//! These back the ablation notes in DESIGN.md §4 (partitioner multi-start
//! cost, simulator throughput scaling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sf_routing::RoutingTables;
use sf_sim::{SimConfig, Simulator};
use sf_topo::SlimFly;
use sf_traffic::TrafficPattern;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    for q in [5u32, 11, 19, 25] {
        group.bench_with_input(BenchmarkId::new("slimfly_mms", q), &q, |b, &q| {
            b.iter(|| {
                let sf = SlimFly::new(q).unwrap();
                std::hint::black_box(sf.router_graph())
            })
        });
    }
    group.finish();
}

fn bench_routing_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_tables");
    for q in [5u32, 11, 19] {
        let sf = SlimFly::new(q).unwrap();
        let g = sf.router_graph();
        group.bench_with_input(BenchmarkId::new("apsp", q), &g, |b, g| {
            b.iter(|| std::hint::black_box(RoutingTables::new(g)))
        });
    }
    group.finish();
}

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    group.sample_size(10);
    for q in [5u32, 11] {
        let sf = SlimFly::new(q).unwrap();
        let g = sf.router_graph();
        for starts in [1usize, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("fm_bisect_q{q}"), starts),
                &starts,
                |b, &starts| {
                    b.iter(|| std::hint::black_box(sf_graph::partition::bisect(&g, starts, 1)))
                },
            );
        }
    }
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    let sf = SlimFly::new(5).unwrap();
    let net = sf.network();
    let tables = RoutingTables::new(&net.graph);
    let pattern = TrafficPattern::uniform(net.num_endpoints() as u32);
    let cfg = SimConfig {
        warmup: 200,
        measure: 800,
        drain: 1_000,
        ..Default::default()
    };
    for load in [0.2f64, 0.6] {
        group.bench_with_input(
            BenchmarkId::new("sf_q5_min_1k_cycles", format!("load{load}")),
            &load,
            |b, &load| {
                b.iter(|| {
                    let sim =
                        Simulator::new(&net, &tables, &sf_routing::MinRouter, &pattern, load, cfg);
                    std::hint::black_box(sim.run())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_construction,
    bench_routing_tables,
    bench_partition,
    bench_simulator
);
criterion_main!(benches);
