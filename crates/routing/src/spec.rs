//! Declarative routing specs: [`RoutingSpec`] names a routing scheme in
//! a compact string grammar, mirroring what `slimfly::spec::TopologySpec`
//! does for topologies — the same value can come from a CLI flag, a
//! config file, or code, and [`RoutingSpec::build`] is the single
//! registry turning a spec into a live [`Router`].
//!
//! | Scheme | Spec | Router |
//! |--------|------|--------|
//! | Minimal (SF-MIN) | `min` | [`MinRouter`] |
//! | Valiant (SF-VAL) | `val`, `val:cap3` | [`ValiantRouter`] |
//! | UGAL local | `ugal-l`, `ugal-l:c=4` | [`UgalRouter`] |
//! | UGAL global | `ugal-g`, `ugal-g:c=4` | [`UgalRouter`] |
//! | Adaptive ECMP (ANCA) | `ecmp` | [`AdaptiveEcmpRouter`] |
//! | FatPaths layered | `fatpaths`, `fatpaths:layers=3` | [`FatPathsRouter`] |
//!
//! The grammar is `name` or `name:param` — one parameter per scheme,
//! so comma-separated spec *lists* (`--routing min,ugal-l:c=4`) stay
//! unambiguous; specs round-trip through [`std::fmt::Display`] /
//! [`std::str::FromStr`]. Ill-formed
//! parameters — `ugal-l:c=0`, `fatpaths:layers=0` — are typed
//! [`RoutingError`]s at parse (or, for programmatically built values,
//! at [`RoutingSpec::build`]) time, never silent runtime fallbacks.

use crate::paths::RouteAlgo;
use crate::router::{
    AdaptiveEcmpRouter, FatPathsRouter, MinRouter, Router, UgalRouter, ValiantRouter,
    FATPATHS_MAX_LAYERS, FATPATHS_SEED,
};
use crate::tables::RoutingTables;
use sf_graph::Graph;
use std::fmt;
use std::str::FromStr;

/// Default UGAL candidate count (the paper's best value, §IV-C).
pub const DEFAULT_UGAL_CANDIDATES: usize = 4;

/// Default FatPaths layer count.
pub const DEFAULT_FATPATHS_LAYERS: usize = 3;

/// Errors from routing-spec parsing and router construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RoutingError {
    /// A routing spec string could not be parsed.
    ParseSpec {
        /// The offending input.
        input: String,
        /// What went wrong.
        reason: String,
    },
    /// A spec carries parameters no router accepts (e.g. zero UGAL
    /// candidates), or the topology cannot host the scheme.
    InvalidParam {
        /// Canonical rendering of the offending spec.
        spec: String,
        /// Which constraint was violated.
        reason: String,
    },
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingError::ParseSpec { input, reason } => {
                write!(f, "cannot parse routing spec {input:?}: {reason}")
            }
            RoutingError::InvalidParam { spec, reason } => {
                write!(f, "invalid routing parameters in {spec}: {reason}")
            }
        }
    }
}

impl std::error::Error for RoutingError {}

/// A declarative description of one routing scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RoutingSpec {
    /// Minimal static routing, random ECMP tie-break (§IV-A).
    Min,
    /// Valiant random routing (§IV-B); `cap3` is the ≤3-hop ablation.
    Valiant {
        /// Restrict random paths to at most 3 hops.
        cap3: bool,
    },
    /// UGAL with local (source-queue) information (§IV-C2).
    UgalL {
        /// Random Valiant candidates compared against MIN (must be ≥ 1).
        candidates: usize,
    },
    /// UGAL with global (whole-path) queue information (§IV-C1).
    UgalG {
        /// Random Valiant candidates compared against MIN (must be ≥ 1).
        candidates: usize,
    },
    /// Per-hop adaptive ECMP over minimal paths (the fat tree's ANCA).
    Ecmp,
    /// FatPaths-style layered multipath (Besta et al. 2020).
    FatPaths {
        /// Path layers, including the full-graph layer 0
        /// (1..=[`FATPATHS_MAX_LAYERS`]).
        layers: usize,
    },
}

impl RoutingSpec {
    /// Every scheme the registry accepts, with an example spec string.
    pub const SCHEMES: &'static [(&'static str, &'static str)] = &[
        ("min", "min"),
        ("val", "val:cap3"),
        ("ugal-l", "ugal-l:c=4"),
        ("ugal-g", "ugal-g:c=4"),
        ("ecmp", "ecmp"),
        ("fatpaths", "fatpaths:layers=3"),
    ];

    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            RoutingSpec::Min => "MIN".into(),
            RoutingSpec::Valiant { cap3: false } => "VAL".into(),
            RoutingSpec::Valiant { cap3: true } => "VAL-cap3".into(),
            RoutingSpec::UgalL { .. } => "UGAL-L".into(),
            RoutingSpec::UgalG { .. } => "UGAL-G".into(),
            RoutingSpec::Ecmp => "ANCA".into(),
            RoutingSpec::FatPaths { layers } => format!("FatPaths-{layers}"),
        }
    }

    /// Validates the spec's parameters without building anything.
    pub fn validate(&self) -> Result<(), RoutingError> {
        let invalid = |reason: &str| RoutingError::InvalidParam {
            spec: self.to_string(),
            reason: reason.into(),
        };
        match self {
            RoutingSpec::UgalL { candidates: 0 } | RoutingSpec::UgalG { candidates: 0 } => {
                Err(invalid("UGAL needs at least one Valiant candidate (c ≥ 1)"))
            }
            RoutingSpec::FatPaths { layers: 0 } => {
                Err(invalid("FatPaths needs at least one layer"))
            }
            RoutingSpec::FatPaths { layers } if *layers > FATPATHS_MAX_LAYERS => Err(invalid(
                &format!("more than {FATPATHS_MAX_LAYERS} layers is never useful"),
            )),
            _ => Ok(()),
        }
    }

    /// Builds the live [`Router`] — the single constructor registry for
    /// every routing scheme. `tables` must be built over `graph`.
    /// Schemes with precomputed structure (FatPaths layers) do their
    /// topology-dependent work here; invalid parameters surface as
    /// typed errors, never as silent fallbacks.
    pub fn build(
        &self,
        graph: &Graph,
        tables: &RoutingTables,
    ) -> Result<Box<dyn Router>, RoutingError> {
        self.validate()?;
        Ok(match *self {
            RoutingSpec::Min => Box::new(MinRouter),
            RoutingSpec::Valiant { cap3 } => Box::new(ValiantRouter { cap3 }),
            RoutingSpec::UgalL { candidates } => Box::new(UgalRouter::new(candidates, false)?),
            RoutingSpec::UgalG { candidates } => Box::new(UgalRouter::new(candidates, true)?),
            RoutingSpec::Ecmp => Box::new(AdaptiveEcmpRouter),
            RoutingSpec::FatPaths { layers } => {
                Box::new(FatPathsRouter::build(graph, tables, layers, FATPATHS_SEED)?)
            }
        })
    }
}

impl From<RouteAlgo> for RoutingSpec {
    fn from(algo: RouteAlgo) -> Self {
        match algo {
            RouteAlgo::Min => RoutingSpec::Min,
            RouteAlgo::Valiant { cap3 } => RoutingSpec::Valiant { cap3 },
            RouteAlgo::UgalL { candidates } => RoutingSpec::UgalL { candidates },
            RouteAlgo::UgalG { candidates } => RoutingSpec::UgalG { candidates },
            RouteAlgo::AdaptiveEcmp => RoutingSpec::Ecmp,
        }
    }
}

impl fmt::Display for RoutingSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingSpec::Min => write!(f, "min"),
            RoutingSpec::Valiant { cap3: false } => write!(f, "val"),
            RoutingSpec::Valiant { cap3: true } => write!(f, "val:cap3"),
            RoutingSpec::UgalL { candidates } => write!(f, "ugal-l:c={candidates}"),
            RoutingSpec::UgalG { candidates } => write!(f, "ugal-g:c={candidates}"),
            RoutingSpec::Ecmp => write!(f, "ecmp"),
            RoutingSpec::FatPaths { layers } => write!(f, "fatpaths:layers={layers}"),
        }
    }
}

fn parse_err(input: &str, reason: impl Into<String>) -> RoutingError {
    RoutingError::ParseSpec {
        input: input.to_string(),
        reason: reason.into(),
    }
}

/// Parses `key=value` out of a single-parameter body.
fn parse_param(input: &str, body: &str, key: &str) -> Result<usize, RoutingError> {
    let (k, v) = body
        .split_once('=')
        .ok_or_else(|| parse_err(input, format!("expected {key}=<n>")))?;
    if k != key {
        return Err(parse_err(
            input,
            format!("unknown parameter {k} (expected {key})"),
        ));
    }
    v.parse::<usize>()
        .map_err(|_| parse_err(input, format!("cannot parse {key}={v}")))
}

impl FromStr for RoutingSpec {
    type Err = RoutingError;

    fn from_str(s: &str) -> Result<Self, RoutingError> {
        let (name, body) = match s.split_once(':') {
            Some((n, b)) => (n, Some(b)),
            None => (s, None),
        };
        let spec = match (name, body) {
            ("min", None) => RoutingSpec::Min,
            ("val", None) => RoutingSpec::Valiant { cap3: false },
            ("val", Some("cap3")) => RoutingSpec::Valiant { cap3: true },
            ("val", Some(other)) => {
                return Err(parse_err(s, format!("unknown val parameter {other:?}")))
            }
            ("ugal-l", None) => RoutingSpec::UgalL {
                candidates: DEFAULT_UGAL_CANDIDATES,
            },
            ("ugal-l", Some(b)) => RoutingSpec::UgalL {
                candidates: parse_param(s, b, "c")?,
            },
            ("ugal-g", None) => RoutingSpec::UgalG {
                candidates: DEFAULT_UGAL_CANDIDATES,
            },
            ("ugal-g", Some(b)) => RoutingSpec::UgalG {
                candidates: parse_param(s, b, "c")?,
            },
            ("ecmp", None) => RoutingSpec::Ecmp,
            ("fatpaths", None) => RoutingSpec::FatPaths {
                layers: DEFAULT_FATPATHS_LAYERS,
            },
            ("fatpaths", Some(b)) => RoutingSpec::FatPaths {
                layers: parse_param(s, b, "layers")?,
            },
            ("min" | "ecmp", Some(_)) => {
                return Err(parse_err(s, format!("{name} takes no parameters")))
            }
            (other, _) => {
                let names: Vec<&str> = RoutingSpec::SCHEMES.iter().map(|&(n, _)| n).collect();
                return Err(parse_err(
                    s,
                    format!(
                        "unknown routing scheme {other:?} (expected one of {})",
                        names.join(", ")
                    ),
                ));
            }
        };
        // Parameter-range errors surface at parse time too, so a CLI
        // typo like `ugal-l:c=0` fails before any network is built.
        spec.validate().map_err(|e| match e {
            RoutingError::InvalidParam { reason, .. } => parse_err(s, reason),
            other => other,
        })?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(s: &str) -> RoutingSpec {
        s.parse::<RoutingSpec>().unwrap()
    }

    #[test]
    fn parse_grammar_examples() {
        assert_eq!(rt("min"), RoutingSpec::Min);
        assert_eq!(rt("val"), RoutingSpec::Valiant { cap3: false });
        assert_eq!(rt("val:cap3"), RoutingSpec::Valiant { cap3: true });
        assert_eq!(rt("ugal-l:c=4"), RoutingSpec::UgalL { candidates: 4 });
        assert_eq!(rt("ugal-g:c=7"), RoutingSpec::UgalG { candidates: 7 });
        assert_eq!(rt("ecmp"), RoutingSpec::Ecmp);
        assert_eq!(rt("fatpaths:layers=3"), RoutingSpec::FatPaths { layers: 3 });
        // Defaults.
        assert_eq!(rt("ugal-l"), RoutingSpec::UgalL { candidates: 4 });
        assert_eq!(rt("fatpaths"), RoutingSpec::FatPaths { layers: 3 });
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "min",
            "val",
            "val:cap3",
            "ugal-l:c=4",
            "ugal-g:c=2",
            "ecmp",
            "fatpaths:layers=3",
        ] {
            let spec = rt(s);
            assert_eq!(spec.to_string(), s, "canonical form of {s}");
            assert_eq!(rt(&spec.to_string()), spec, "round trip of {s}");
        }
    }

    #[test]
    fn parse_errors_are_typed() {
        for bad in [
            "warp",
            "min:now",
            "val:cap2",
            "ugal-l:c=",
            "ugal-l:k=4",
            "ugal-l:c=banana",
            "ecmp:x=1",
            "fatpaths:layers=",
            "fatpaths:c=3",
            "",
        ] {
            let err = bad.parse::<RoutingSpec>().unwrap_err();
            assert!(
                matches!(err, RoutingError::ParseSpec { .. }),
                "{bad}: {err:?}"
            );
        }
        let err = "warp".parse::<RoutingSpec>().unwrap_err();
        assert!(
            err.to_string().contains("fatpaths"),
            "suggests schemes: {err}"
        );
    }

    #[test]
    fn zero_candidates_rejected_at_parse_and_build() {
        // The old engine silently fell back to a default when UGAL got
        // zero candidates; both entry points now produce typed errors.
        assert!(matches!(
            "ugal-l:c=0".parse::<RoutingSpec>().unwrap_err(),
            RoutingError::ParseSpec { .. }
        ));
        assert!(matches!(
            "fatpaths:layers=0".parse::<RoutingSpec>().unwrap_err(),
            RoutingError::ParseSpec { .. }
        ));
        let g = sf_topo::SlimFly::new(5).unwrap().router_graph();
        let t = RoutingTables::new(&g);
        let err = RoutingSpec::UgalG { candidates: 0 }
            .build(&g, &t)
            .err()
            .expect("zero candidates must not build");
        assert!(matches!(err, RoutingError::InvalidParam { .. }), "{err}");
        let err = RoutingSpec::FatPaths { layers: 0 }
            .build(&g, &t)
            .err()
            .expect("zero layers must not build");
        assert!(matches!(err, RoutingError::InvalidParam { .. }), "{err}");
    }

    #[test]
    fn registry_builds_all_schemes() {
        let g = sf_topo::SlimFly::new(5).unwrap().router_graph();
        let t = RoutingTables::new(&g);
        for &(_, example) in RoutingSpec::SCHEMES {
            let spec = rt(example);
            let router = spec
                .build(&g, &t)
                .unwrap_or_else(|e| panic!("{example}: {e}"));
            assert_eq!(router.label(), spec.label());
        }
    }

    #[test]
    fn legacy_algo_converts() {
        assert_eq!(RoutingSpec::from(RouteAlgo::Min), RoutingSpec::Min);
        assert_eq!(
            RoutingSpec::from(RouteAlgo::UgalL { candidates: 4 }),
            RoutingSpec::UgalL { candidates: 4 }
        );
        assert_eq!(
            RoutingSpec::from(RouteAlgo::AdaptiveEcmp),
            RoutingSpec::Ecmp
        );
        assert_eq!(
            RoutingSpec::from(RouteAlgo::Valiant { cap3: true }).to_string(),
            "val:cap3"
        );
    }

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(rt("min").label(), "MIN");
        assert_eq!(rt("val").label(), "VAL");
        assert_eq!(rt("val:cap3").label(), "VAL-cap3");
        assert_eq!(rt("ugal-l").label(), "UGAL-L");
        assert_eq!(rt("ugal-g").label(), "UGAL-G");
        assert_eq!(rt("ecmp").label(), "ANCA");
        assert_eq!(rt("fatpaths:layers=3").label(), "FatPaths-3");
    }
}
