//! Path generation: MIN, Valiant, and UGAL candidate sets (paper §IV).
//!
//! Paths are sequences of router ids, source router first, destination
//! router last (a direct-neighbor path has length 2; `[r]` means source
//! and destination share the router). The queue-sensitive UGAL *choice*
//! is made in `sf-sim`, which owns router state; this module generates
//! the candidate paths the choice is made over.

use crate::tables::RoutingTables;
use rand::Rng;
use sf_graph::Graph;

/// Routing algorithm selector, mirroring §IV and Fig 6 legends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteAlgo {
    /// Minimal static routing (SF-MIN), random ECMP tie-break.
    Min,
    /// Valiant random routing (SF-VAL); `cap3` restricts random paths to
    /// at most 3 hops (the ablation of §IV-B which the paper found to
    /// *increase* latency).
    Valiant { cap3: bool },
    /// UGAL with local queue information (§IV-C2); `candidates` random
    /// Valiant paths are compared against MIN (paper: 4 is best).
    UgalL { candidates: usize },
    /// UGAL with global queue information (§IV-C1).
    UgalG { candidates: usize },
    /// Per-hop adaptive ECMP over minimal paths — the stand-in for the
    /// fat tree's Adaptive Nearest Common Ancestor protocol (ANCA): at
    /// every hop the least-loaded minimal next hop is taken.
    AdaptiveEcmp,
}

impl RouteAlgo {
    /// Display name matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            RouteAlgo::Min => "MIN",
            RouteAlgo::Valiant { cap3: false } => "VAL",
            RouteAlgo::Valiant { cap3: true } => "VAL-cap3",
            RouteAlgo::UgalL { .. } => "UGAL-L",
            RouteAlgo::UgalG { .. } => "UGAL-G",
            RouteAlgo::AdaptiveEcmp => "ANCA",
        }
    }
}

/// Path generator bound to a topology's routing tables.
pub struct PathGen<'a> {
    graph: &'a Graph,
    tables: &'a RoutingTables,
}

impl<'a> PathGen<'a> {
    /// Creates a generator over a router graph and its tables.
    pub fn new(graph: &'a Graph, tables: &'a RoutingTables) -> Self {
        PathGen { graph, tables }
    }

    /// The distance tables in use.
    pub fn tables(&self) -> &RoutingTables {
        self.tables
    }

    /// A uniformly random minimal path from `s` to `d` (router ids,
    /// inclusive). Random ECMP: each next hop drawn uniformly from the
    /// minimal next-hop set.
    pub fn min_path<R: Rng>(&self, s: u32, d: u32, rng: &mut R) -> Vec<u32> {
        let mut path = Vec::with_capacity(8);
        self.extend_min_path(s, d, rng, &mut path);
        path
    }

    /// Appends a uniformly random minimal path from `s` to `d`
    /// (inclusive of both) to `out` — the allocation-free form of
    /// [`PathGen::min_path`] for hot loops that reuse a buffer. The
    /// RNG draw sequence is identical to [`PathGen::min_path`].
    pub fn extend_min_path<R: Rng>(&self, s: u32, d: u32, rng: &mut R, out: &mut Vec<u32>) {
        out.push(s);
        self.extend_min_hops(s, d, rng, out);
    }

    /// Appends the hops *after* `s` of a uniformly random minimal path
    /// `s → d`. Each next hop is drawn with the same
    /// `gen_range(0..count)` a materialized next-hop list would use —
    /// count first, then select the k-th qualifying neighbor — so the
    /// draw sequence matches the collecting implementation exactly.
    fn extend_min_hops<R: Rng>(&self, s: u32, d: u32, rng: &mut R, out: &mut Vec<u32>) {
        // Symmetric distance matrix: all per-neighbor lookups read row
        // `d`, which stays cache-resident for the whole path walk. The
        // qualifying next hops are staged in a stack buffer so the
        // row is read once per hop (a second selection pass for the
        // rare router with more than 128 neighbors).
        let row = self.tables.row(d);
        let mut cand = [0u32; 128];
        let mut cur = s;
        while cur != d {
            let need = row[cur as usize];
            let nbrs = self.graph.neighbors(cur);
            let mut n = 0usize;
            if nbrs.len() <= cand.len() {
                for &v in nbrs {
                    if need != crate::tables::UNREACHABLE && row[v as usize] + 1 == need {
                        cand[n] = v;
                        n += 1;
                    }
                }
                debug_assert!(n > 0, "no minimal next hop {cur}->{d}");
                cur = cand[rng.gen_range(0..n)];
            } else {
                for &v in nbrs {
                    if need != crate::tables::UNREACHABLE && row[v as usize] + 1 == need {
                        n += 1;
                    }
                }
                debug_assert!(n > 0, "no minimal next hop {cur}->{d}");
                let mut k = rng.gen_range(0..n);
                for &v in nbrs {
                    if need != crate::tables::UNREACHABLE && row[v as usize] + 1 == need {
                        if k == 0 {
                            cur = v;
                            break;
                        }
                        k -= 1;
                    }
                }
            }
            out.push(cur);
        }
    }

    /// A Valiant random path (§IV-B): minimal to a random intermediate
    /// router `Rr ∉ {Rs, Rd}`, then minimal to `d`. With `cap3`, the
    /// intermediate is redrawn until the total length is ≤ 3 hops
    /// (paper's constrained variant).
    pub fn valiant_path<R: Rng>(&self, s: u32, d: u32, cap3: bool, rng: &mut R) -> Vec<u32> {
        let mut path = Vec::with_capacity(8);
        self.extend_valiant_path(s, d, cap3, rng, &mut path);
        path
    }

    /// Appends a Valiant random path from `s` to `d` (inclusive of
    /// both) to `out` — the allocation-free form of
    /// [`PathGen::valiant_path`], with the identical RNG draw sequence
    /// (intermediate draws, then the two minimal segments).
    pub fn extend_valiant_path<R: Rng>(
        &self,
        s: u32,
        d: u32,
        cap3: bool,
        rng: &mut R,
        out: &mut Vec<u32>,
    ) {
        let nr = self.tables.num_routers() as u32;
        if s == d || nr <= 2 {
            return self.extend_min_path(s, d, rng, out);
        }
        let (row_s, row_d) = (self.tables.row(s), self.tables.row(d));
        for _attempt in 0..64 {
            let mut r = rng.gen_range(0..nr);
            while r == s || r == d {
                r = rng.gen_range(0..nr);
            }
            let (leg_s, leg_d) = (row_s[r as usize], row_d[r as usize]);
            if leg_s == crate::tables::UNREACHABLE || leg_d == crate::tables::UNREACHABLE {
                // Degraded graphs only: an intermediate in another
                // component (or an isolated dead router) cannot host a
                // detour — redraw. On connected graphs this branch is
                // unreachable, so the RNG draw sequence is unchanged.
                continue;
            }
            let hops = leg_s as u32 + leg_d as u32;
            if cap3 && hops > 3 {
                continue;
            }
            self.extend_min_path(s, r, rng, out);
            self.extend_min_hops(r, d, rng, out);
            return;
        }
        // cap3 may be infeasible for far pairs; fall back to minimal.
        self.extend_min_path(s, d, rng, out)
    }

    /// UGAL candidate set: the MIN path plus `n` Valiant candidates
    /// (§IV-C: the simulator picks by queue occupancy). Hot paths
    /// (`UgalRouter::route`) generate and score candidates one at a
    /// time through [`PathGen::extend_valiant_path`] instead — same
    /// paths, same RNG sequence, no per-candidate allocation.
    pub fn ugal_candidates<R: Rng>(
        &self,
        s: u32,
        d: u32,
        n: usize,
        rng: &mut R,
    ) -> (Vec<u32>, Vec<Vec<u32>>) {
        let min = self.min_path(s, d, rng);
        let cands = (0..n)
            .map(|_| self.valiant_path(s, d, false, rng))
            .collect();
        (min, cands)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cycle(n: usize) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        Graph::from_edges(n, &edges)
    }

    fn validate_path(g: &Graph, path: &[u32], s: u32, d: u32) {
        assert_eq!(*path.first().unwrap(), s);
        assert_eq!(*path.last().unwrap(), d);
        for w in path.windows(2) {
            assert!(g.has_edge(w[0], w[1]), "non-edge {}-{}", w[0], w[1]);
        }
    }

    #[test]
    fn min_path_is_shortest() {
        let g = cycle(8);
        let t = RoutingTables::new(&g);
        let gen = PathGen::new(&g, &t);
        let mut rng = StdRng::seed_from_u64(1);
        for s in 0..8u32 {
            for d in 0..8u32 {
                let p = gen.min_path(s, d, &mut rng);
                validate_path(&g, &p, s, d);
                assert_eq!(p.len() as u8 - 1, t.distance(s, d));
            }
        }
    }

    #[test]
    fn min_path_uses_both_ecmp_branches() {
        let g = cycle(6);
        let t = RoutingTables::new(&g);
        let gen = PathGen::new(&g, &t);
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen_cw = false;
        let mut seen_ccw = false;
        for _ in 0..64 {
            let p = gen.min_path(0, 3, &mut rng);
            if p[1] == 1 {
                seen_cw = true;
            }
            if p[1] == 5 {
                seen_ccw = true;
            }
        }
        assert!(
            seen_cw && seen_ccw,
            "ECMP must randomize over both branches"
        );
    }

    #[test]
    fn valiant_path_valid_and_longer() {
        let g = cycle(8);
        let t = RoutingTables::new(&g);
        let gen = PathGen::new(&g, &t);
        let mut rng = StdRng::seed_from_u64(3);
        let mut total_val = 0usize;
        let mut total_min = 0usize;
        for _ in 0..100 {
            let p = gen.valiant_path(0, 2, false, &mut rng);
            validate_path(&g, &p, 0, 2);
            total_val += p.len() - 1;
            total_min += t.distance(0, 2) as usize;
        }
        assert!(
            total_val > total_min,
            "Valiant takes detours on average: {total_val} vs {total_min}"
        );
    }

    #[test]
    fn valiant_cap3_respects_cap_when_feasible() {
        // Complete graph: every Valiant path is exactly 2 hops — cap 3
        // always feasible.
        let mut g = Graph::empty(6);
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                g.add_edge(u, v);
            }
        }
        let t = RoutingTables::new(&g);
        let gen = PathGen::new(&g, &t);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let p = gen.valiant_path(0, 1, true, &mut rng);
            assert!(p.len() - 1 <= 3);
            validate_path(&g, &p, 0, 1);
        }
    }

    #[test]
    fn valiant_same_router_is_trivial() {
        let g = cycle(5);
        let t = RoutingTables::new(&g);
        let gen = PathGen::new(&g, &t);
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(gen.valiant_path(2, 2, false, &mut rng), vec![2]);
    }

    #[test]
    fn ugal_candidate_counts() {
        let g = cycle(8);
        let t = RoutingTables::new(&g);
        let gen = PathGen::new(&g, &t);
        let mut rng = StdRng::seed_from_u64(11);
        let (min, cands) = gen.ugal_candidates(0, 4, 4, &mut rng);
        assert_eq!(min.len() as u8 - 1, t.distance(0, 4));
        assert_eq!(cands.len(), 4);
        for c in &cands {
            validate_path(&g, c, 0, 4);
        }
    }

    #[test]
    fn labels() {
        assert_eq!(RouteAlgo::Min.label(), "MIN");
        assert_eq!(RouteAlgo::Valiant { cap3: false }.label(), "VAL");
        assert_eq!(RouteAlgo::Valiant { cap3: true }.label(), "VAL-cap3");
        assert_eq!(RouteAlgo::UgalL { candidates: 4 }.label(), "UGAL-L");
        assert_eq!(RouteAlgo::UgalG { candidates: 4 }.label(), "UGAL-G");
        assert_eq!(RouteAlgo::AdaptiveEcmp.label(), "ANCA");
    }
}
