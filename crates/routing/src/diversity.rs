//! Path diversity: edge-disjoint path counts between router pairs.
//!
//! The paper attributes both Slim Fly's resiliency (§III-D1: "its
//! structure provides high path diversity") and flattened butterfly's
//! to the number of independent routes between routers. This module
//! computes the maximum number of edge-disjoint paths (= min edge cut,
//! by Menger's theorem) between router pairs with a unit-capacity
//! max-flow (BFS augmenting paths — capacities are 1, so the flow value
//! is bounded by the degree and each augmentation costs O(E)).

use sf_graph::Graph;

/// Maximum number of edge-disjoint paths between `s` and `t`
/// (each undirected edge may be used by one path in one direction).
pub fn edge_disjoint_paths(g: &Graph, s: u32, t: u32) -> usize {
    assert_ne!(s, t, "diversity is defined for distinct routers");
    let n = g.num_vertices();
    // Residual capacities per directed edge, addressed by (edge index,
    // direction). Undirected unit capacity: cap(u→v) + cap(v→u) ∈ {0..2},
    // initialized to 1 each; a flow along u→v increments v→u's residual.
    let edges = g.edge_list();
    let eidx = |u: u32, v: u32| -> (usize, usize) {
        let (a, b, dir) = if u < v { (u, v, 0) } else { (v, u, 1) };
        let pos = edges.binary_search(&(a, b)).expect("edge");
        (pos, dir)
    };
    let mut cap = vec![[1u8; 2]; edges.len()];

    let mut flow = 0usize;
    loop {
        // BFS for an augmenting path in the residual graph.
        let mut parent: Vec<Option<u32>> = vec![None; n];
        let mut queue = std::collections::VecDeque::new();
        parent[s as usize] = Some(s);
        queue.push_back(s);
        'bfs: while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if parent[v as usize].is_none() {
                    let (pos, dir) = eidx(u, v);
                    if cap[pos][dir] > 0 {
                        parent[v as usize] = Some(u);
                        if v == t {
                            break 'bfs;
                        }
                        queue.push_back(v);
                    }
                }
            }
        }
        if parent[t as usize].is_none() {
            return flow;
        }
        // Augment along the found path.
        let mut v = t;
        while v != s {
            let u = parent[v as usize].expect("v is on the BFS-augmenting path back to s");
            let (pos, dir) = eidx(u, v);
            cap[pos][dir] -= 1;
            cap[pos][1 - dir] += 1;
            v = u;
        }
        flow += 1;
    }
}

/// Average and minimum edge-disjoint path counts over a deterministic
/// sample of router pairs (stride sampling over ordered pairs).
pub fn diversity_stats(g: &Graph, samples: usize) -> (f64, usize) {
    let n = g.num_vertices() as u32;
    assert!(n >= 2);
    let total_pairs = (n as u64) * (n as u64 - 1);
    let stride = (total_pairs / samples.max(1) as u64).max(1);
    let mut sum = 0usize;
    let mut min = usize::MAX;
    let mut count = 0usize;
    let mut idx = 0u64;
    while idx < total_pairs {
        let s = (idx / (n as u64 - 1)) as u32;
        let mut t = (idx % (n as u64 - 1)) as u32;
        if t >= s {
            t += 1;
        }
        let d = edge_disjoint_paths(g, s, t);
        sum += d;
        min = min.min(d);
        count += 1;
        idx += stride;
    }
    (sum as f64 / count as f64, min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_graph_has_one() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(edge_disjoint_paths(&g, 0, 3), 1);
    }

    #[test]
    fn cycle_has_two() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        assert_eq!(edge_disjoint_paths(&g, 0, 3), 2);
        assert_eq!(edge_disjoint_paths(&g, 0, 1), 2);
    }

    #[test]
    fn complete_graph_has_n_minus_one() {
        let mut g = Graph::empty(6);
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                g.add_edge(u, v);
            }
        }
        assert_eq!(edge_disjoint_paths(&g, 0, 5), 5);
    }

    #[test]
    fn disconnected_has_zero() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(edge_disjoint_paths(&g, 0, 3), 0);
    }

    #[test]
    fn regular_graph_diversity_equals_degree() {
        // For a k'-regular edge-transitive-ish expander, min cut between
        // any pair is the degree: Slim Fly achieves the maximum possible
        // diversity (§III-D1's structural argument).
        let sf = sf_topo::SlimFly::new(5).unwrap();
        let g = sf.router_graph();
        let (avg, min) = diversity_stats(&g, 24);
        assert_eq!(min, 7, "every HS pair has 7 edge-disjoint paths");
        assert!((avg - 7.0).abs() < 1e-9);
    }

    #[test]
    fn dragonfly_global_links_limit_diversity() {
        // Between two DF groups there is ONE global cable: router pairs
        // in different groups still reach degree-many paths via other
        // groups, but the per-group-pair direct bandwidth is 1 —
        // diversity stays bounded by the router degree (a−1+h), equal to
        // SF's k' only at larger radix.
        let df = sf_topo::dragonfly::Dragonfly::balanced(2);
        let g = df.router_graph();
        let (avg, min) = diversity_stats(&g, 24);
        let deg = g.max_degree();
        assert!(min <= deg);
        assert!(avg <= deg as f64 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn same_router_rejected() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        edge_disjoint_paths(&g, 1, 1);
    }
}
