//! # sf-routing — the pluggable routing engine and deadlock freedom
//!
//! Implements the routing layer of the Slim Fly paper (§IV) as an
//! *open* engine: policies are [`router::Router`] trait objects selected
//! by declarative [`spec::RoutingSpec`] strings, not a closed enum.
//!
//! * [`router`] — the [`Router`] trait (source-routing
//!   and per-hop hooks over a narrow [`QueueView`])
//!   plus all built-in policies: **MIN** (§IV-A), **Valiant** (§IV-B),
//!   **UGAL-L/G** (§IV-C), adaptive **ECMP**, and FatPaths-style
//!   layered multipath (Besta et al. 2020);
//! * [`spec`] — the `min` / `val:cap3` / `ugal-l:c=4` /
//!   `fatpaths:layers=3` string grammar and the single
//!   [`RoutingSpec::build`](spec::RoutingSpec::build) registry;
//! * [`tables::RoutingTables`] — all-pairs distance tables with
//!   ECMP-aware minimal next-hop queries;
//! * [`paths`] — the path generators the policies draw from (random
//!   minimal paths, Valiant detours, UGAL candidate sets).
//!
//! Deadlock analysis — VC assignment schemes, wormhole-aware channel
//! dependency graphs, cycle witnesses, and routing-totality
//! certificates — lives in the `sf-verify` crate, which rebuilds the
//! dependency relation from the exact allocation arithmetic `sf-sim`
//! exports.

pub mod diversity;
pub mod paths;
pub mod router;
pub mod spec;
pub mod tables;

pub use paths::{PathGen, RouteAlgo};
pub use router::{
    AdaptiveEcmpRouter, FatPathsRouter, MinRouter, NoQueues, QueueView, RouteCtx, RouteDecision,
    Router, UgalRouter, ValiantRouter,
};
pub use spec::{RoutingError, RoutingSpec};
pub use tables::RoutingTables;
