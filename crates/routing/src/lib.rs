//! # sf-routing — routing algorithms and deadlock freedom
//!
//! Implements the routing layer of the Slim Fly paper (§IV):
//!
//! * [`tables::RoutingTables`] — all-pairs distance tables with
//!   ECMP-aware minimal next-hop queries (the substrate for **MIN**
//!   routing, §IV-A);
//! * [`paths`] — random minimal paths, **Valiant** random paths (§IV-B,
//!   with the optional 3-hop cap ablation), and **UGAL** candidate sets
//!   (§IV-C; the actual UGAL-L/UGAL-G queue-based choice lives in
//!   `sf-sim`, which owns the queues);
//! * [`deadlock`] — virtual-channel assignment (hop-index scheme of
//!   Gopal, §IV-D), channel-dependency-graph acyclicity checking, and a
//!   DFSSSP-style layered VC assignment that reproduces the paper's
//!   "SF needs ~3 VCs, random DLN needs 8–15 VLs" experiment.

pub mod deadlock;
pub mod diversity;
pub mod paths;
pub mod tables;

pub use paths::{PathGen, RouteAlgo};
pub use tables::RoutingTables;
