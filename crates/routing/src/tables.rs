//! All-pairs distance tables and minimal next-hop queries.
//!
//! A [`RoutingTables`] instance stores the full router-to-router distance
//! matrix as `u8` (network diameters here are ≤ ~30; 255 = unreachable).
//! For the network sizes the paper simulates (Nr ≤ ~2500) this is a few
//! megabytes and gives O(1) distance lookups and O(degree) next-hop
//! queries — the substrate for MIN routing and for the worst-case
//! traffic-pattern generator.

use sf_graph::{metrics, Graph};

/// Unreachable marker in the distance matrix.
pub const UNREACHABLE: u8 = u8::MAX;

/// Dense all-pairs distance matrix over routers.
#[derive(Clone, Debug)]
pub struct RoutingTables {
    nr: usize,
    dist: Vec<u8>,
}

impl RoutingTables {
    /// Builds tables by parallel BFS from every router.
    pub fn new(g: &Graph) -> Self {
        use rayon::prelude::*;
        let nr = g.num_vertices();
        let rows: Vec<Vec<u8>> = (0..nr as u32)
            .into_par_iter()
            .map(|s| {
                metrics::bfs_distances(g, s)
                    .into_iter()
                    .map(|d| {
                        if d == metrics::UNREACHABLE {
                            UNREACHABLE
                        } else {
                            d.min(254) as u8
                        }
                    })
                    .collect()
            })
            .collect();
        let mut dist = Vec::with_capacity(nr * nr);
        for row in rows {
            dist.extend_from_slice(&row);
        }
        RoutingTables { nr, dist }
    }

    /// Number of routers covered.
    #[inline]
    pub fn num_routers(&self) -> usize {
        self.nr
    }

    /// Hop distance from `u` to `v` ([`UNREACHABLE`] if disconnected).
    #[inline]
    pub fn distance(&self, u: u32, v: u32) -> u8 {
        self.dist[u as usize * self.nr + v as usize]
    }

    /// The contiguous distance row of `u`: `row(u)[v] == distance(u, v)`.
    ///
    /// Since router graphs are undirected the matrix is symmetric, so
    /// `row(d)[v]` is also the distance *from* `v` *to* `d` — hot loops
    /// that probe many sources against one destination (ECMP next-hop
    /// counting, Valiant candidate screening) use this row to stay
    /// within one cache-resident slice instead of striding the matrix
    /// column-wise.
    #[inline]
    pub fn row(&self, u: u32) -> &[u8] {
        &self.dist[u as usize * self.nr..(u as usize + 1) * self.nr]
    }

    /// All neighbors of `u` lying on some shortest path to `d`
    /// (the ECMP next-hop set for MIN routing).
    pub fn min_next_hops<'a>(
        &'a self,
        g: &'a Graph,
        u: u32,
        d: u32,
    ) -> impl Iterator<Item = u32> + 'a {
        // Symmetric matrix: distance(v, d) read from row d (cache-hot
        // across the whole query instead of striding a column).
        let row = self.row(d);
        let need = row[u as usize];
        g.neighbors(u)
            .iter()
            .copied()
            .filter(move |&v| need != UNREACHABLE && row[v as usize] + 1 == need)
    }

    /// Number of distinct shortest paths from `u` to `d` (path
    /// diversity; counts can overflow for huge graphs so saturate).
    pub fn count_min_paths(&self, g: &Graph, u: u32, d: u32) -> u64 {
        if u == d {
            return 1;
        }
        let du = self.distance(u, d);
        if du == UNREACHABLE {
            return 0;
        }
        self.min_next_hops(g, u, d)
            .map(|v| self.count_min_paths(g, v, d))
            .fold(0u64, |a, b| a.saturating_add(b))
    }

    /// Maximum finite distance (the diameter if connected).
    pub fn max_distance(&self) -> u8 {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != UNREACHABLE)
            .max()
            .unwrap_or(0)
    }

    /// Average inter-router distance over ordered pairs (u ≠ v).
    pub fn average_distance(&self) -> f64 {
        let mut sum = 0u64;
        let mut count = 0u64;
        for u in 0..self.nr {
            for v in 0..self.nr {
                if u == v {
                    continue;
                }
                let d = self.dist[u * self.nr + v];
                if d != UNREACHABLE {
                    sum += d as u64;
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn distances_on_cycle() {
        let g = cycle(6);
        let t = RoutingTables::new(&g);
        assert_eq!(t.distance(0, 0), 0);
        assert_eq!(t.distance(0, 1), 1);
        assert_eq!(t.distance(0, 3), 3);
        assert_eq!(t.distance(0, 5), 1);
        assert_eq!(t.max_distance(), 3);
    }

    #[test]
    fn next_hops_ecmp() {
        let g = cycle(6);
        let t = RoutingTables::new(&g);
        // From 0 to the antipode 3: both directions are minimal.
        let hops: Vec<u32> = t.min_next_hops(&g, 0, 3).collect();
        assert_eq!(hops.len(), 2);
        assert!(hops.contains(&1) && hops.contains(&5));
        // From 0 to 1: single next hop.
        let hops: Vec<u32> = t.min_next_hops(&g, 0, 1).collect();
        assert_eq!(hops, vec![1]);
    }

    #[test]
    fn path_counting() {
        let g = cycle(6);
        let t = RoutingTables::new(&g);
        assert_eq!(t.count_min_paths(&g, 0, 3), 2);
        assert_eq!(t.count_min_paths(&g, 0, 2), 1);
        assert_eq!(t.count_min_paths(&g, 0, 0), 1);
        // 4-cycle grid-like diversity: K4 minus an edge.
        let h = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let th = RoutingTables::new(&h);
        assert_eq!(th.count_min_paths(&h, 0, 3), 2);
    }

    #[test]
    fn disconnected_marked_unreachable() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let t = RoutingTables::new(&g);
        assert_eq!(t.distance(0, 2), UNREACHABLE);
        assert_eq!(t.count_min_paths(&g, 0, 2), 0);
        assert_eq!(t.min_next_hops(&g, 0, 2).count(), 0);
    }

    #[test]
    fn average_distance_matches_metrics() {
        let g = cycle(8);
        let t = RoutingTables::new(&g);
        let exact = metrics::average_distance(&g).unwrap();
        assert!((t.average_distance() - exact).abs() < 1e-12);
    }
}
