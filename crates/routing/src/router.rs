//! The pluggable routing engine: the [`Router`] trait and the built-in
//! policies (MIN, Valiant, UGAL-L/G, adaptive ECMP, FatPaths).
//!
//! The cycle-level simulator in `sf-sim` owns router queues and flit
//! movement but **no routing policy**: every path decision is delegated
//! to a [`Router`] implementation through two hooks —
//! [`Router::route`] at injection time (source routing) and
//! [`Router::next_hop`] at every hop (per-hop adaptive routing). Queue
//! state crosses the boundary only through the narrow [`QueueView`]
//! abstraction, so a policy sees exactly as much congestion information
//! as its real-world counterpart would:
//!
//! * **UGAL-L** (§IV-C2) queries [`QueueView::occupancy`] only for the
//!   *source* router's output ports — local information;
//! * **UGAL-G** (§IV-C1) sums occupancies along whole candidate paths —
//!   the idealized global-knowledge variant;
//! * **MIN**/**Valiant** never consult the view at all.
//!
//! Adding a routing scheme is a leaf change: implement [`Router`],
//! register a name in [`crate::spec::RoutingSpec`], and every consumer
//! of the experiment API (CLI flags, config files, the fluent builder)
//! can select it by string.

use crate::paths::PathGen;
use crate::spec::RoutingError;
use crate::tables::RoutingTables;
use rand::rngs::StdRng;
use rand::Rng;
use sf_graph::Graph;

/// Read-only view of the simulator's output-queue state.
///
/// # Contract
///
/// `occupancy(r, to)` returns the congestion metric of the output link
/// from router `r` toward its neighbor `to`: staged flits plus
/// downstream buffer slots in use (credits outstanding) — the "output
/// queue length" the UGAL papers inspect. `to` **must** be a neighbor
/// of `r` in the router graph; implementations may panic otherwise.
///
/// **Occupancy counts flits, not packets.** Under multi-flit wormhole
/// simulation (`packet_size > 1`) every body and tail flit occupies a
/// staged slot or a downstream credit exactly like a head flit does,
/// so a policy comparing occupancies automatically sees serialization
/// pressure: a link carrying one 16-flit packet reads as 16× busier
/// than a link carrying one single-flit packet. No per-packet
/// normalization is applied — that matches what real UGAL hardware
/// measures (buffer slots in use).
///
/// The view is a snapshot of the current cycle: occupancy does not
/// change while a routing decision is being made. Implementations are
/// **O(1) per query** — the engine maintains an incremental per-link
/// occupancy counter (updated at grant, transmission and credit
/// arrival), so a query is a single array read and policies may probe
/// every hop of every candidate path without a cost cliff (UGAL-G and
/// per-hop adaptive schemes rely on this). Policies that model *local*
/// knowledge (UGAL-L) must only query `r == ctx.src`; the engine does
/// not enforce this, the trait impl is the policy.
///
/// **Allocation-phase restriction (sharded engine).** Injection-time
/// decisions ([`Router::route`]) may probe any router's links —
/// the engine takes an occupancy snapshot consistent across the whole
/// cycle. Per-hop decisions ([`Router::next_hop`]), however, run
/// inside the VC-allocation phase, which the engine may execute
/// shard-parallel over disjoint router ranges: a `next_hop`
/// implementation may only query the occupancy of the *deciding*
/// router's own output links (`r == cur`), never a foreign
/// router's. The sharded engine enforces this with an assertion on
/// its allocation-phase view; see the "Sharding" notes in
/// `sf_sim::engine`.
pub trait QueueView {
    /// Queue occupancy of the link `r → to` (flits; 0 = idle link).
    fn occupancy(&self, r: u32, to: u32) -> u32;
}

/// A [`QueueView`] reporting zero occupancy everywhere — for contexts
/// with no live simulator state (unit tests, offline path dumps).
pub struct NoQueues;

impl QueueView for NoQueues {
    fn occupancy(&self, _r: u32, _to: u32) -> u32 {
        0
    }
}

/// Everything a [`Router`] may consult when making a decision.
pub struct RouteCtx<'a> {
    /// The router-to-router graph.
    pub graph: &'a Graph,
    /// All-pairs distance tables over `graph`.
    pub tables: &'a RoutingTables,
    /// Live queue occupancies (see the [`QueueView`] contract).
    pub queues: &'a dyn QueueView,
    /// Source router (where the packet was injected).
    pub src: u32,
    /// Destination router.
    pub dst: u32,
    /// Stable flow identifier (e.g. source/destination endpoint pair);
    /// flowlet-based schemes hash it to keep a flow's packets together.
    pub flow: u64,
    /// Current simulation cycle.
    pub now: u32,
}

impl<'a> RouteCtx<'a> {
    /// A context with no live queue state (tests, offline evaluation).
    pub fn offline(graph: &'a Graph, tables: &'a RoutingTables, src: u32, dst: u32) -> Self {
        RouteCtx {
            graph,
            tables,
            queues: &NoQueues,
            src,
            dst,
            flow: 0,
            now: 0,
        }
    }

    /// A uniformly random minimal-path generator over this context.
    pub fn path_gen(&self) -> PathGen<'a> {
        PathGen::new(self.graph, self.tables)
    }
}

/// Outcome of the injection-time routing decision.
pub enum RouteDecision {
    /// Source routing: the full router path (source first, destination
    /// last; `[r]` when source and destination share a router).
    Path(Vec<u32>),
    /// Per-hop routing: the packet carries only its destination and the
    /// engine calls [`Router::next_hop`] at every router.
    PerHop,
}

/// A routing policy, pluggable into the `sf-sim` engine.
///
/// Implementations must be `Send + Sync`: one router instance is shared
/// by all parallel load points of a sweep, so all mutable decision
/// state must live in the per-packet inputs (`ctx`, `rng`) — policies
/// are pure functions of the context plus their precomputed structure
/// (e.g. FatPaths layers).
pub trait Router: Send + Sync {
    /// Display label, figure-legend style (`"MIN"`, `"UGAL-L"`, …).
    fn label(&self) -> String;

    /// Injection-time decision: a full source route or [`RouteDecision::PerHop`].
    ///
    /// Called exactly once per **packet**, when its *head flit* is
    /// injected; under multi-flit wormhole simulation the body and
    /// tail flits reuse the head's decision.
    fn route(&self, ctx: &RouteCtx<'_>, rng: &mut StdRng) -> RouteDecision;

    /// Per-hop decision for [`RouteDecision::PerHop`] packets sitting at
    /// router `cur`: the next-hop router (must be a neighbor of `cur`).
    /// Source-routing policies never receive this call.
    ///
    /// **Head-flit-only contract**: the engine reaches this hook only
    /// for a packet's *head* flit (possibly several times, if the head
    /// is blocked and re-arbitrated on later cycles). Once the head is
    /// granted an output, the engine routes the packet's remaining
    /// flits over the reserved (link, VC) without consulting the
    /// policy — a policy can therefore never split one packet across
    /// links, and any RNG it draws is drawn per head-flit arbitration,
    /// never per body flit.
    fn next_hop(&self, ctx: &RouteCtx<'_>, cur: u32, rng: &mut StdRng) -> u32 {
        let _ = (ctx, cur, rng);
        unreachable!("next_hop called on a source-routing router")
    }
}

/// Minimal static routing (SF-MIN, §IV-A): a uniformly random shortest
/// path, ECMP tie-break at every hop.
#[derive(Clone, Copy, Debug, Default)]
pub struct MinRouter;

impl Router for MinRouter {
    fn label(&self) -> String {
        "MIN".into()
    }

    fn route(&self, ctx: &RouteCtx<'_>, rng: &mut StdRng) -> RouteDecision {
        RouteDecision::Path(ctx.path_gen().min_path(ctx.src, ctx.dst, rng))
    }
}

/// Valiant random routing (SF-VAL, §IV-B): minimal to a random
/// intermediate router, then minimal to the destination.
#[derive(Clone, Copy, Debug, Default)]
pub struct ValiantRouter {
    /// Restrict random paths to ≤ 3 hops (the §IV-B ablation the paper
    /// found to *increase* latency).
    pub cap3: bool,
}

impl Router for ValiantRouter {
    fn label(&self) -> String {
        if self.cap3 { "VAL-cap3" } else { "VAL" }.into()
    }

    fn route(&self, ctx: &RouteCtx<'_>, rng: &mut StdRng) -> RouteDecision {
        RouteDecision::Path(
            ctx.path_gen()
                .valiant_path(ctx.src, ctx.dst, self.cap3, rng),
        )
    }
}

/// UGAL (§IV-C): compare the MIN path against random Valiant candidates
/// by queue-weighted path length and take the cheapest.
///
/// `global = false` is **UGAL-L**: only the *source router's* output
/// queue toward each candidate's first hop is inspected (the score is
/// `(hops) × (occupancy + 1)`), matching what deployed hardware can
/// know locally. `global = true` is **UGAL-G**: occupancies are summed
/// along the entire candidate path — the idealized upper bound.
#[derive(Clone, Copy, Debug)]
pub struct UgalRouter {
    candidates: usize,
    global: bool,
}

impl UgalRouter {
    /// Builds a UGAL router with `candidates` random Valiant paths
    /// (paper: 4 is best). Zero candidates is a typed error — UGAL
    /// degenerating to MIN silently was a long-standing foot-gun.
    pub fn new(candidates: usize, global: bool) -> Result<Self, RoutingError> {
        if candidates == 0 {
            return Err(RoutingError::InvalidParam {
                spec: if global { "ugal-g:c=0" } else { "ugal-l:c=0" }.into(),
                reason: "UGAL needs at least one Valiant candidate (c ≥ 1)".into(),
            });
        }
        Ok(UgalRouter { candidates, global })
    }

    /// Candidate count.
    pub fn candidates(&self) -> usize {
        self.candidates
    }
}

impl Router for UgalRouter {
    fn label(&self) -> String {
        if self.global { "UGAL-G" } else { "UGAL-L" }.into()
    }

    fn route(&self, ctx: &RouteCtx<'_>, rng: &mut StdRng) -> RouteDecision {
        // Candidates are generated and scored one at a time into two
        // reused buffers (scoring draws no RNG, so the draw sequence is
        // identical to materializing the whole candidate set first).
        let gen = ctx.path_gen();
        let mut best = Vec::with_capacity(8);
        gen.extend_min_path(ctx.src, ctx.dst, rng, &mut best);
        let mut cand = Vec::with_capacity(8);
        if self.global {
            // Global: total queue occupancy along the whole path.
            let score = |p: &[u32]| -> u64 {
                p.windows(2)
                    .map(|w| ctx.queues.occupancy(w[0], w[1]) as u64)
                    .sum()
            };
            let mut best_score = score(&best);
            for _ in 0..self.candidates {
                cand.clear();
                gen.extend_valiant_path(ctx.src, ctx.dst, false, rng, &mut cand);
                let s = score(&cand);
                if s < best_score || (s == best_score && cand.len() < best.len()) {
                    best_score = s;
                    std::mem::swap(&mut best, &mut cand);
                }
            }
        } else {
            // Local: queue length at the source × path length (the
            // classic UGAL-L product score).
            let score = |p: &[u32]| -> u64 {
                if p.len() < 2 {
                    return 0;
                }
                (p.len() as u64 - 1) * (ctx.queues.occupancy(ctx.src, p[1]) as u64 + 1)
            };
            let mut best_score = score(&best);
            for _ in 0..self.candidates {
                cand.clear();
                gen.extend_valiant_path(ctx.src, ctx.dst, false, rng, &mut cand);
                let s = score(&cand);
                if s < best_score {
                    best_score = s;
                    std::mem::swap(&mut best, &mut cand);
                }
            }
        }
        RouteDecision::Path(best)
    }
}

/// Per-hop adaptive ECMP over minimal paths — the stand-in for the fat
/// tree's Adaptive Nearest Common Ancestor protocol (ANCA): at every
/// hop the least-occupied minimal next hop is taken.
#[derive(Clone, Copy, Debug, Default)]
pub struct AdaptiveEcmpRouter;

impl Router for AdaptiveEcmpRouter {
    fn label(&self) -> String {
        "ANCA".into()
    }

    fn route(&self, _ctx: &RouteCtx<'_>, _rng: &mut StdRng) -> RouteDecision {
        RouteDecision::PerHop
    }

    fn next_hop(&self, ctx: &RouteCtx<'_>, cur: u32, _rng: &mut StdRng) -> u32 {
        let mut best: Option<(u32, u32)> = None; // (occupancy, router)
        for v in ctx.tables.min_next_hops(ctx.graph, cur, ctx.dst) {
            let occ = ctx.queues.occupancy(cur, v);
            if best.is_none_or(|(bo, _)| occ < bo) {
                best = Some((occ, v));
            }
        }
        best.expect("connected network").1
    }
}

// ---------------------------------------------------------------------
// FatPaths-style layered multipath routing.
// ---------------------------------------------------------------------

/// Maximum router-path hops any FatPaths layer may require. Keeps layer
/// paths within the simulator's per-packet path budget and bounds the
/// VC pressure of the hop-index deadlock-avoidance scheme.
pub const FATPATHS_MAX_LAYER_HOPS: usize = 9;

/// Maximum FatPaths layer count — the single bound shared by spec
/// validation and [`FatPathsRouter::build`].
pub const FATPATHS_MAX_LAYERS: usize = 16;

/// Default seed for the deterministic layer construction.
pub const FATPATHS_SEED: u64 = 0xFA7_9A75;

/// Default flowlet window (cycles): packets of one flow switch layers
/// at most once per window.
pub const FATPATHS_FLOWLET_CYCLES: u32 = 64;

struct Layer {
    graph: Graph,
    tables: RoutingTables,
}

/// The degraded-operation connectivity criterion for FatPaths layers:
/// every **live** router of the base graph (degree > 0 — a degraded
/// [`sf_topo::Network`] zeroes dead routers' cables and endpoints
/// together, so degree-0 routers host no traffic) must reach every
/// other live router in the candidate layer `t`. On an intact base
/// every router is live and this is the classic all-pairs check.
fn live_connected(base: &Graph, t: &RoutingTables) -> bool {
    let mut live = (0..base.num_vertices() as u32).filter(|&v| base.degree(v) > 0);
    match live.next() {
        None => true,
        Some(first) => live.all(|v| t.distance(first, v) != crate::tables::UNREACHABLE),
    }
}

/// FatPaths-style layered multipath routing (Besta et al. 2020, "High-
/// Performance Routing with Multipathing and Path Diversity").
///
/// The network's links are organized into `k` **layers**: layer 0 is
/// the full graph (pure minimal routing); each further layer is a
/// connected spanning subgraph built by deleting a *distinct* slice of
/// the (deterministically shuffled) edge list, so minimal paths in
/// different layers are steered over near-disjoint link sets — the
/// path-diversity mechanism of the FatPaths design. Every packet is
/// routed minimally *within one layer*, selected per **flowlet**: the
/// flow id and the current cycle window are hashed, so a flow's packets
/// stick to one layer for [`FATPATHS_FLOWLET_CYCLES`] cycles (limiting
/// reordering) while the flow population spreads across all layers.
///
/// Layer construction enforces connectivity and a per-layer diameter of
/// at most `base diameter + 2` (never more than
/// [`FATPATHS_MAX_LAYER_HOPS`]) by re-adding deleted edges when a
/// candidate subgraph degrades too far. Deadlock freedom rides on the
/// strictly increasing hop-index VC scheme exactly as Valiant detours
/// do — the CDG of hop-indexed channels over all layers' paths is
/// acyclic (validated by the `sf-verify` crate's
/// `ChannelDependencyGraph`). That argument needs
/// one VC per hop: like Valiant on deep topologies, simulating with
/// `num_vcs <` [`FatPathsRouter::max_path_hops`] clamps trailing hops
/// to the last VC and weakens the guarantee — on diameter-2 Slim Fly
/// graphs the `+2` cap keeps layer paths within the default 4-VC
/// budget; raise `num_vcs` on deeper base topologies.
pub struct FatPathsRouter {
    layers: Vec<Layer>,
    flowlet_cycles: u32,
}

impl std::fmt::Debug for FatPathsRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FatPathsRouter")
            .field("layers", &self.layers.len())
            .field(
                "layer_edges",
                &self
                    .layers
                    .iter()
                    .map(|l| l.graph.num_edges())
                    .collect::<Vec<_>>(),
            )
            .field("flowlet_cycles", &self.flowlet_cycles)
            .finish()
    }
}

impl FatPathsRouter {
    /// Builds `num_layers` routing layers over `graph`. `tables` must be
    /// the distance tables of `graph` (reused as layer 0).
    pub fn build(
        graph: &Graph,
        tables: &RoutingTables,
        num_layers: usize,
        seed: u64,
    ) -> Result<Self, RoutingError> {
        let invalid = |reason: String| RoutingError::InvalidParam {
            spec: format!("fatpaths:layers={num_layers}"),
            reason,
        };
        if num_layers == 0 {
            return Err(invalid("need at least one layer".into()));
        }
        if num_layers > FATPATHS_MAX_LAYERS {
            return Err(invalid(format!(
                "more than {FATPATHS_MAX_LAYERS} layers is never useful"
            )));
        }
        if tables.max_distance() as usize > FATPATHS_MAX_LAYER_HOPS {
            return Err(invalid(format!(
                "base graph diameter {} exceeds the {}-hop layer budget",
                tables.max_distance(),
                FATPATHS_MAX_LAYER_HOPS
            )));
        }
        if !live_connected(graph, tables) {
            return Err(invalid(
                "base graph's live routers are not connected (degraded \
                 networks must pass the partition check before routing)"
                    .into(),
            ));
        }
        // Degraded layers may detour at most 2 hops past the base
        // diameter: keeps VC pressure near the simulator's default
        // budget (see the deadlock note on the type).
        let hop_budget = (tables.max_distance() as usize + 2).min(FATPATHS_MAX_LAYER_HOPS);
        let mut layers = Vec::with_capacity(num_layers);
        layers.push(Layer {
            graph: graph.clone(),
            tables: tables.clone(),
        });

        // Deterministic shuffle of the edge list; each extra layer
        // deletes a distinct rotating slice (~1/3 of all edges), so the
        // layers' surviving link sets differ as much as possible.
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = graph.edge_list();
        for i in (1..edges.len()).rev() {
            edges.swap(i, rng.gen_range(0..i + 1));
        }
        let ne = edges.len();
        let slice = ne / 3;
        for l in 1..num_layers {
            // The loop only runs for num_layers >= 2.
            let start = (l - 1) * ne / (num_layers - 1);
            let mut removed: Vec<(u32, u32)> =
                (0..slice).map(|i| edges[(start + i) % ne]).collect();
            // Layer-repair fallback: halve the deletion set until the
            // layer connects every live router within the hop budget
            // (empty set = layer 0 topology, which is known good). On a
            // fault-degraded base this is the documented "layer died"
            // path — a layer whose slice would cut off live routers
            // sheds deletions until it survives, in the worst case
            // collapsing onto the degraded base graph itself, so every
            // layer remains a valid (if less diverse) routing function.
            let layer = loop {
                let g = graph.without_edges(&removed);
                let t = RoutingTables::new(&g);
                let connected = live_connected(graph, &t);
                if connected && (t.max_distance() as usize) <= hop_budget {
                    break Layer {
                        graph: g,
                        tables: t,
                    };
                }
                if removed.is_empty() {
                    unreachable!("empty deletion set equals the admissible base graph");
                }
                removed.truncate(removed.len() / 2);
            };
            layers.push(layer);
        }
        Ok(FatPathsRouter {
            layers,
            flowlet_cycles: FATPATHS_FLOWLET_CYCLES,
        })
    }

    /// Number of layers (including the full-graph layer 0).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Router graph of layer `l`.
    pub fn layer_graph(&self, l: usize) -> &Graph {
        &self.layers[l].graph
    }

    /// Distance tables of layer `l`.
    pub fn layer_tables(&self, l: usize) -> &RoutingTables {
        &self.layers[l].tables
    }

    /// Longest path (hops) any layer can produce.
    pub fn max_path_hops(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.tables.max_distance() as usize)
            .max()
            .unwrap_or(0)
    }

    /// The layer a `(flow, cycle)` pair is pinned to.
    pub fn layer_for(&self, flow: u64, now: u32) -> usize {
        // splitmix64 over (flow, flowlet window) — stable within a
        // window, uniform across layers between windows.
        let mut z = flow ^ ((now / self.flowlet_cycles) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % self.layers.len() as u64) as usize
    }
}

impl Router for FatPathsRouter {
    fn label(&self) -> String {
        format!("FatPaths-{}", self.layers.len())
    }

    fn route(&self, ctx: &RouteCtx<'_>, rng: &mut StdRng) -> RouteDecision {
        let layer = &self.layers[self.layer_for(ctx.flow, ctx.now)];
        let gen = PathGen::new(&layer.graph, &layer.tables);
        RouteDecision::Path(gen.min_path(ctx.src, ctx.dst, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::RouteAlgo;
    use rand::SeedableRng;

    fn cycle(n: usize) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        Graph::from_edges(n, &edges)
    }

    fn sf5() -> (Graph, RoutingTables) {
        let g = sf_topo::SlimFly::new(5).unwrap().router_graph();
        let t = RoutingTables::new(&g);
        (g, t)
    }

    fn validate_path(g: &Graph, path: &[u32], s: u32, d: u32) {
        assert_eq!(*path.first().unwrap(), s);
        assert_eq!(*path.last().unwrap(), d);
        for w in path.windows(2) {
            assert!(g.has_edge(w[0], w[1]), "non-edge {}-{}", w[0], w[1]);
        }
    }

    #[test]
    fn min_router_routes_minimally() {
        let (g, t) = sf5();
        let mut rng = StdRng::seed_from_u64(1);
        for (s, d) in [(0u32, 1u32), (3, 40), (10, 49)] {
            let ctx = RouteCtx::offline(&g, &t, s, d);
            match MinRouter.route(&ctx, &mut rng) {
                RouteDecision::Path(p) => {
                    validate_path(&g, &p, s, d);
                    assert_eq!(p.len() as u8 - 1, t.distance(s, d));
                }
                RouteDecision::PerHop => panic!("MIN is source-routed"),
            }
        }
    }

    #[test]
    fn ugal_zero_candidates_is_typed_error() {
        let err = UgalRouter::new(0, false).unwrap_err();
        assert!(matches!(err, RoutingError::InvalidParam { .. }), "{err}");
        assert!(err.to_string().contains("c ≥ 1"));
        assert!(UgalRouter::new(4, true).is_ok());
    }

    /// A queue view that makes one specific link look congested.
    struct HotLink {
        r: u32,
        to: u32,
    }
    impl QueueView for HotLink {
        fn occupancy(&self, r: u32, to: u32) -> u32 {
            if r == self.r && to == self.to {
                1_000
            } else {
                0
            }
        }
    }

    #[test]
    fn ugal_local_avoids_hot_first_hop() {
        // Ring of 8: MIN from 0 to 2 goes 0→1→2; make 0→1 hot and
        // UGAL-L must find a detour whose first hop is not 1.
        let g = cycle(8);
        let t = RoutingTables::new(&g);
        let hot = HotLink { r: 0, to: 1 };
        let ctx = RouteCtx {
            graph: &g,
            tables: &t,
            queues: &hot,
            src: 0,
            dst: 2,
            flow: 0,
            now: 0,
        };
        let router = UgalRouter::new(8, false).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut avoided = 0;
        for _ in 0..20 {
            if let RouteDecision::Path(p) = router.route(&ctx, &mut rng) {
                validate_path(&g, &p, 0, 2);
                if p[1] != 1 {
                    avoided += 1;
                }
            }
        }
        assert!(avoided > 10, "UGAL-L avoided the hot link {avoided}/20");
    }

    #[test]
    fn adaptive_ecmp_takes_least_occupied_minimal_hop() {
        // Ring of 6, 0 → 3: both directions minimal; congest 0→1.
        let g = cycle(6);
        let t = RoutingTables::new(&g);
        let hot = HotLink { r: 0, to: 1 };
        let ctx = RouteCtx {
            graph: &g,
            tables: &t,
            queues: &hot,
            src: 0,
            dst: 3,
            flow: 0,
            now: 0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        assert!(matches!(
            AdaptiveEcmpRouter.route(&ctx, &mut rng),
            RouteDecision::PerHop
        ));
        assert_eq!(AdaptiveEcmpRouter.next_hop(&ctx, 0, &mut rng), 5);
    }

    #[test]
    fn fatpaths_layers_connected_and_bounded() {
        let (g, t) = sf5();
        let fp = FatPathsRouter::build(&g, &t, 3, FATPATHS_SEED).unwrap();
        assert_eq!(fp.num_layers(), 3);
        assert!(fp.max_path_hops() <= FATPATHS_MAX_LAYER_HOPS);
        for l in 0..fp.num_layers() {
            let lt = fp.layer_tables(l);
            for v in 0..g.num_vertices() as u32 {
                assert_ne!(lt.distance(0, v), crate::tables::UNREACHABLE, "layer {l}");
            }
        }
        // Layer 0 is the untouched base graph.
        assert_eq!(fp.layer_graph(0).num_edges(), g.num_edges());
        // Extra layers actually shed edges (path diversity exists).
        assert!(fp.layer_graph(1).num_edges() < g.num_edges());
        assert!(fp.layer_graph(2).num_edges() < g.num_edges());
    }

    #[test]
    fn fatpaths_layers_are_distinct_and_deterministic() {
        let (g, t) = sf5();
        let a = FatPathsRouter::build(&g, &t, 4, FATPATHS_SEED).unwrap();
        let b = FatPathsRouter::build(&g, &t, 4, FATPATHS_SEED).unwrap();
        for l in 0..4 {
            assert_eq!(
                a.layer_graph(l).edge_list(),
                b.layer_graph(l).edge_list(),
                "construction must be deterministic"
            );
        }
        // Different layers delete different slices.
        assert_ne!(a.layer_graph(1).edge_list(), a.layer_graph(2).edge_list());
    }

    #[test]
    fn fatpaths_routes_are_valid_and_spread_over_layers() {
        let (g, t) = sf5();
        let fp = FatPathsRouter::build(&g, &t, 3, FATPATHS_SEED).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut layers_seen = std::collections::HashSet::new();
        for flow in 0..40u64 {
            layers_seen.insert(fp.layer_for(flow, 0));
            let ctx = RouteCtx {
                graph: &g,
                tables: &t,
                queues: &NoQueues,
                src: (flow % 50) as u32,
                dst: ((flow * 7 + 13) % 50) as u32,
                flow,
                now: 0,
            };
            if ctx.src == ctx.dst {
                continue;
            }
            match fp.route(&ctx, &mut rng) {
                RouteDecision::Path(p) => {
                    validate_path(&g, &p, ctx.src, ctx.dst);
                    assert!(p.len() - 1 <= FATPATHS_MAX_LAYER_HOPS);
                }
                RouteDecision::PerHop => panic!("FatPaths is source-routed"),
            }
        }
        assert_eq!(layers_seen.len(), 3, "flows must spread over all layers");
    }

    #[test]
    fn fatpaths_flowlets_are_sticky_within_a_window() {
        let (g, t) = sf5();
        let fp = FatPathsRouter::build(&g, &t, 3, FATPATHS_SEED).unwrap();
        for flow in 0..10u64 {
            let l0 = fp.layer_for(flow, 0);
            for now in 0..FATPATHS_FLOWLET_CYCLES {
                assert_eq!(fp.layer_for(flow, now), l0, "stable within a window");
            }
        }
        // Across many windows a flow visits more than one layer.
        let visited: std::collections::HashSet<usize> = (0..32u32)
            .map(|w| fp.layer_for(42, w * FATPATHS_FLOWLET_CYCLES))
            .collect();
        assert!(visited.len() > 1, "flows re-balance between windows");
    }

    #[test]
    fn fatpaths_invalid_shapes_are_typed_errors() {
        let (g, t) = sf5();
        assert!(matches!(
            FatPathsRouter::build(&g, &t, 0, 1).unwrap_err(),
            RoutingError::InvalidParam { .. }
        ));
        assert!(matches!(
            FatPathsRouter::build(&g, &t, 17, 1).unwrap_err(),
            RoutingError::InvalidParam { .. }
        ));
        // A path graph longer than the hop budget cannot host layers.
        let long = Graph::from_edges(16, &(0..15u32).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let lt = RoutingTables::new(&long);
        assert!(FatPathsRouter::build(&long, &lt, 2, 1).is_err());
    }

    #[test]
    fn fatpaths_builds_on_router_killed_degraded_graph() {
        // Kill router 0 of SF(q=5): all its incident edges go away and it
        // becomes an isolated (dead) vertex. FatPaths must still build,
        // connecting every *live* router in every layer — the classic
        // vertex-0-anchored check would reject this graph outright.
        let (g, _) = sf5();
        let dead: Vec<(u32, u32)> = g.neighbors(0).iter().map(|&v| (0, v)).collect();
        let dg = g.without_edges(&dead);
        assert_eq!(dg.degree(0), 0);
        let dt = RoutingTables::new(&dg);
        let fp = FatPathsRouter::build(&dg, &dt, 3, FATPATHS_SEED).unwrap();
        for l in 0..fp.num_layers() {
            let lt = fp.layer_tables(l);
            for v in 2..dg.num_vertices() as u32 {
                assert_ne!(lt.distance(1, v), crate::tables::UNREACHABLE, "layer {l}");
            }
        }
        // Routes between live routers stay valid on the degraded graph.
        let mut rng = StdRng::seed_from_u64(5);
        let ctx = RouteCtx::offline(&dg, &dt, 1, 40);
        match fp.route(&ctx, &mut rng) {
            RouteDecision::Path(p) => validate_path(&dg, &p, 1, 40),
            RouteDecision::PerHop => panic!("FatPaths is source-routed"),
        }
        // A base whose *live* routers are partitioned is a typed error:
        // two disjoint live edges plus isolated vertices.
        let split = Graph::from_edges(6, &[(0, 1), (2, 3)]);
        let st = RoutingTables::new(&split);
        let err = FatPathsRouter::build(&split, &st, 2, 1).unwrap_err();
        assert!(err.to_string().contains("live routers"), "{err}");
    }

    #[test]
    fn legacy_algo_bridge_builds_matching_labels() {
        // The one legacy bridge: RouteAlgo → RoutingSpec → build.
        let g = cycle(6);
        let t = RoutingTables::new(&g);
        for (algo, label) in [
            (RouteAlgo::Min, "MIN"),
            (RouteAlgo::Valiant { cap3: true }, "VAL-cap3"),
            (RouteAlgo::UgalL { candidates: 4 }, "UGAL-L"),
            (RouteAlgo::UgalG { candidates: 4 }, "UGAL-G"),
            (RouteAlgo::AdaptiveEcmp, "ANCA"),
        ] {
            let spec = crate::spec::RoutingSpec::from(algo);
            assert_eq!(spec.build(&g, &t).unwrap().label(), label);
        }
        let bad = crate::spec::RoutingSpec::from(RouteAlgo::UgalL { candidates: 0 });
        assert!(bad.build(&g, &t).is_err());
    }
}
