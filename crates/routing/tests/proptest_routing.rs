//! Property-based tests for routing: path validity, minimality, and
//! deadlock-freedom invariants over random topologies and endpoints.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sf_routing::deadlock::{hop_index_is_deadlock_free, hop_index_vcs, ChannelDependencyGraph};
use sf_routing::{PathGen, RoutingTables};
use sf_topo::SlimFly;

fn slimfly_graph(q: u32) -> sf_graph::Graph {
    SlimFly::new(q).unwrap().router_graph()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn min_paths_are_valid_and_minimal(
        q in prop::sample::select(&[5u32, 7, 8, 9][..]),
        s_raw in 0u32..1000,
        d_raw in 0u32..1000,
        seed in 0u64..1000,
    ) {
        let g = slimfly_graph(q);
        let n = g.num_vertices() as u32;
        let (s, d) = (s_raw % n, d_raw % n);
        let t = RoutingTables::new(&g);
        let gen = PathGen::new(&g, &t);
        let mut rng = StdRng::seed_from_u64(seed);
        let p = gen.min_path(s, d, &mut rng);
        prop_assert_eq!(p[0], s);
        prop_assert_eq!(*p.last().unwrap(), d);
        prop_assert_eq!(p.len() as u8 - 1, t.distance(s, d));
        for w in p.windows(2) {
            prop_assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn valiant_paths_are_valid_walks(
        q in prop::sample::select(&[5u32, 7][..]),
        s_raw in 0u32..1000,
        d_raw in 0u32..1000,
        cap3 in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let g = slimfly_graph(q);
        let n = g.num_vertices() as u32;
        let (s, d) = (s_raw % n, d_raw % n);
        let t = RoutingTables::new(&g);
        let gen = PathGen::new(&g, &t);
        let mut rng = StdRng::seed_from_u64(seed);
        let p = gen.valiant_path(s, d, cap3, &mut rng);
        prop_assert_eq!(p[0], s);
        prop_assert_eq!(*p.last().unwrap(), d);
        for w in p.windows(2) {
            prop_assert!(g.has_edge(w[0], w[1]));
        }
        // Valiant on a diameter-2 network is at most 4 hops.
        prop_assert!(p.len() <= 5, "path {:?}", p);
        // Never shorter than the minimal distance.
        prop_assert!(p.len() as u8 > t.distance(s, d));
    }

    #[test]
    fn ugal_candidates_contain_min(
        q in prop::sample::select(&[5u32, 7][..]),
        s_raw in 0u32..1000,
        d_raw in 0u32..1000,
        n_cands in 1usize..8,
        seed in 0u64..1000,
    ) {
        let g = slimfly_graph(q);
        let n = g.num_vertices() as u32;
        let (s, d) = (s_raw % n, d_raw % n);
        let t = RoutingTables::new(&g);
        let gen = PathGen::new(&g, &t);
        let mut rng = StdRng::seed_from_u64(seed);
        let (min, cands) = gen.ugal_candidates(s, d, n_cands, &mut rng);
        prop_assert_eq!(cands.len(), n_cands);
        prop_assert_eq!(min.len() as u8 - 1, t.distance(s, d));
        for c in &cands {
            prop_assert!(c.len() >= min.len());
        }
    }

    #[test]
    fn hop_index_always_deadlock_free(
        q in prop::sample::select(&[5u32, 7][..]),
        seeds in prop::collection::vec(0u64..500, 1..20),
    ) {
        // Any mixture of random minimal + Valiant paths is deadlock-free
        // under the hop-index VC assignment.
        let g = slimfly_graph(q);
        let n = g.num_vertices() as u32;
        let t = RoutingTables::new(&g);
        let gen = PathGen::new(&g, &t);
        let mut paths = Vec::new();
        for seed in seeds {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = (seed % n as u64) as u32;
            let d = ((seed * 31 + 7) % n as u64) as u32;
            paths.push(gen.min_path(s, d, &mut rng));
            paths.push(gen.valiant_path(s, d, false, &mut rng));
        }
        prop_assert!(hop_index_is_deadlock_free(&paths));
    }

    #[test]
    fn single_vc_detects_ring_cycles(len in 3u32..12) {
        // Paths chasing each other around a ring on one VC must be
        // reported cyclic; hop-index must clear it.
        let paths: Vec<Vec<u32>> = (0..len)
            .map(|i| vec![i, (i + 1) % len, (i + 2) % len])
            .collect();
        let mut cdg = ChannelDependencyGraph::new();
        for p in &paths {
            cdg.add_path(p, &[0, 0]);
        }
        prop_assert!(!cdg.is_acyclic());
        prop_assert!(hop_index_is_deadlock_free(&paths));
    }

    #[test]
    fn try_add_path_rollback_preserves_acyclicity(len in 3u32..10) {
        // After a rejected insertion the CDG stays acyclic and accepts
        // non-conflicting paths again.
        let mut cdg = ChannelDependencyGraph::new();
        let ring: Vec<Vec<u32>> = (0..len)
            .map(|i| vec![i, (i + 1) % len, (i + 2) % len])
            .collect();
        let mut rejected = 0;
        for p in &ring {
            if !cdg.try_add_path_acyclic(p, 0) {
                rejected += 1;
            }
        }
        prop_assert!(rejected >= 1, "the full ring cannot fit one layer");
        prop_assert!(cdg.is_acyclic());
        // A fresh disjoint path (vertex ids beyond the ring) must insert.
        let far = vec![100, 101, 102];
        prop_assert!(cdg.try_add_path_acyclic(&far, 0));
        prop_assert!(cdg.is_acyclic());
    }

    #[test]
    fn distance_matrix_triangle_inequality(
        q in prop::sample::select(&[5u32, 7][..]),
        a_raw in 0u32..1000,
        b_raw in 0u32..1000,
        c_raw in 0u32..1000,
    ) {
        let g = slimfly_graph(q);
        let n = g.num_vertices() as u32;
        let (a, b, c) = (a_raw % n, b_raw % n, c_raw % n);
        let t = RoutingTables::new(&g);
        prop_assert!(t.distance(a, c) <= t.distance(a, b) + t.distance(b, c));
        prop_assert_eq!(t.distance(a, b), t.distance(b, a));
        prop_assert_eq!(t.distance(a, a), 0);
    }

    #[test]
    fn hop_index_vcs_strictly_increase(path_len in 2usize..8) {
        let path: Vec<u32> = (0..path_len as u32).collect();
        let vcs = hop_index_vcs(&path);
        for w in vcs.windows(2) {
            prop_assert!(w[1] == w[0] + 1);
        }
    }
}
