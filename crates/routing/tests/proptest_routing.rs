//! Property-based tests for routing: path validity, minimality, and
//! distance-table invariants over random topologies and endpoints.
//! (Deadlock-freedom properties live in `crates/verify/tests/`.)

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sf_routing::{PathGen, RoutingTables};
use sf_topo::SlimFly;

fn slimfly_graph(q: u32) -> sf_graph::Graph {
    SlimFly::new(q).unwrap().router_graph()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn min_paths_are_valid_and_minimal(
        q in prop::sample::select(&[5u32, 7, 8, 9][..]),
        s_raw in 0u32..1000,
        d_raw in 0u32..1000,
        seed in 0u64..1000,
    ) {
        let g = slimfly_graph(q);
        let n = g.num_vertices() as u32;
        let (s, d) = (s_raw % n, d_raw % n);
        let t = RoutingTables::new(&g);
        let gen = PathGen::new(&g, &t);
        let mut rng = StdRng::seed_from_u64(seed);
        let p = gen.min_path(s, d, &mut rng);
        prop_assert_eq!(p[0], s);
        prop_assert_eq!(*p.last().unwrap(), d);
        prop_assert_eq!(p.len() as u8 - 1, t.distance(s, d));
        for w in p.windows(2) {
            prop_assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn valiant_paths_are_valid_walks(
        q in prop::sample::select(&[5u32, 7][..]),
        s_raw in 0u32..1000,
        d_raw in 0u32..1000,
        cap3 in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let g = slimfly_graph(q);
        let n = g.num_vertices() as u32;
        let (s, d) = (s_raw % n, d_raw % n);
        let t = RoutingTables::new(&g);
        let gen = PathGen::new(&g, &t);
        let mut rng = StdRng::seed_from_u64(seed);
        let p = gen.valiant_path(s, d, cap3, &mut rng);
        prop_assert_eq!(p[0], s);
        prop_assert_eq!(*p.last().unwrap(), d);
        for w in p.windows(2) {
            prop_assert!(g.has_edge(w[0], w[1]));
        }
        // Valiant on a diameter-2 network is at most 4 hops.
        prop_assert!(p.len() <= 5, "path {:?}", p);
        // Never shorter than the minimal distance.
        prop_assert!(p.len() as u8 > t.distance(s, d));
    }

    #[test]
    fn ugal_candidates_contain_min(
        q in prop::sample::select(&[5u32, 7][..]),
        s_raw in 0u32..1000,
        d_raw in 0u32..1000,
        n_cands in 1usize..8,
        seed in 0u64..1000,
    ) {
        let g = slimfly_graph(q);
        let n = g.num_vertices() as u32;
        let (s, d) = (s_raw % n, d_raw % n);
        let t = RoutingTables::new(&g);
        let gen = PathGen::new(&g, &t);
        let mut rng = StdRng::seed_from_u64(seed);
        let (min, cands) = gen.ugal_candidates(s, d, n_cands, &mut rng);
        prop_assert_eq!(cands.len(), n_cands);
        prop_assert_eq!(min.len() as u8 - 1, t.distance(s, d));
        for c in &cands {
            prop_assert!(c.len() >= min.len());
        }
    }

    #[test]
    fn distance_matrix_triangle_inequality(
        q in prop::sample::select(&[5u32, 7][..]),
        a_raw in 0u32..1000,
        b_raw in 0u32..1000,
        c_raw in 0u32..1000,
    ) {
        let g = slimfly_graph(q);
        let n = g.num_vertices() as u32;
        let (a, b, c) = (a_raw % n, b_raw % n, c_raw % n);
        let t = RoutingTables::new(&g);
        prop_assert!(t.distance(a, c) <= t.distance(a, b) + t.distance(b, c));
        prop_assert_eq!(t.distance(a, b), t.distance(b, a));
        prop_assert_eq!(t.distance(a, a), 0);
    }

}
