//! Property tests for the declarative routing specs, parallel to the
//! topology-spec round-trip suite: for *every* routing scheme, a
//! generated [`RoutingSpec`] must print to its canonical string and
//! parse back to the same value — the Display/FromStr round trip the
//! experiment API relies on for `--routing` CLI flags and config files.

use proptest::prelude::*;
use sf_routing::RoutingSpec;

/// A strategy producing specs across every routing scheme.
fn any_spec() -> impl Strategy<Value = RoutingSpec> {
    (0usize..6).prop_flat_map(|scheme| {
        (Just(scheme), 1usize..24, any::<bool>()).prop_map(|(scheme, n, flag)| match scheme {
            0 => RoutingSpec::Min,
            1 => RoutingSpec::Valiant { cap3: flag },
            2 => RoutingSpec::UgalL { candidates: n },
            3 => RoutingSpec::UgalG { candidates: n },
            4 => RoutingSpec::Ecmp,
            _ => RoutingSpec::FatPaths { layers: 1 + n % 16 },
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse(display(spec)) == spec` for every scheme.
    #[test]
    fn display_from_str_round_trip(spec in any_spec()) {
        let rendered = spec.to_string();
        let reparsed: RoutingSpec = rendered.parse().unwrap_or_else(|e| {
            panic!("canonical form {rendered:?} of {spec:?} must reparse: {e}")
        });
        prop_assert_eq!(reparsed, spec, "round trip through {}", rendered);
        // Display is canonical: printing the reparse is a fixed point.
        prop_assert_eq!(reparsed.to_string(), rendered);
    }

    /// Generated specs always pass validation (the strategy covers the
    /// whole legal parameter space) and carry a non-empty label.
    #[test]
    fn generated_specs_validate_and_label(spec in any_spec()) {
        prop_assert!(spec.validate().is_ok(), "{spec:?}");
        prop_assert!(!spec.label().is_empty());
    }

    /// Every scheme builds a live router on a real topology, and the
    /// router's label agrees with the spec's.
    #[test]
    fn small_specs_build(idx in 0usize..6) {
        let (_, example) = RoutingSpec::SCHEMES[idx];
        let spec: RoutingSpec = example.parse().unwrap();
        let g = sf_topo::SlimFly::new(5).unwrap().router_graph();
        let tables = sf_routing::RoutingTables::new(&g);
        let router = spec.build(&g, &tables).unwrap();
        prop_assert_eq!(router.label(), spec.label());
    }
}
