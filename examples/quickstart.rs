//! Quickstart: build the paper's flagship Slim Fly, inspect its
//! structure, route a packet, and run a short simulation.
//!
//! Run with: `cargo run --release --example quickstart`

use slimfly::prelude::*;

fn main() {
    // 1. Construct the Slim Fly from §V of the paper: q = 19.
    let sf = SlimFly::new(19).expect("19 is an admissible prime power");
    let net = sf.network();
    println!("network: {}", net.summary());
    println!(
        "  q = {}, δ = {}, k' = {}, balanced p = {}",
        sf.q(),
        sf.delta(),
        sf.network_radix(),
        sf.balanced_concentration()
    );

    // 2. Structural properties (§III).
    let diameter = metrics::diameter(&net.graph).unwrap();
    let avg = metrics::average_distance(&net.graph).unwrap();
    println!("  diameter = {diameter} (paper: 2)");
    println!("  average router distance = {avg:.3}");
    println!(
        "  average endpoint hops (uniform traffic) = {:.3}",
        average_hops_uniform(&net)
    );

    // 3. Minimal routing (§IV-A): route between two endpoints.
    let tables = RoutingTables::new(&net.graph);
    let gen = slimfly::routing::paths::PathGen::new(&net.graph, &tables);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let (src, dst) = (0u32, net.num_endpoints() as u32 - 1);
    let (rs, rd) = (net.endpoint_router(src), net.endpoint_router(dst));
    let path = gen.min_path(rs, rd, &mut rng);
    println!("  minimal route endpoint {src} -> {dst}: routers {path:?}");

    // 4. A short cycle-accurate simulation at 30% uniform load (§V-A).
    let pattern = TrafficPattern::uniform(net.num_endpoints() as u32);
    let cfg = SimConfig {
        warmup: 500,
        measure: 1_000,
        drain: 2_000,
        ..Default::default()
    };
    let res = Simulator::new(&net, &tables, RouteAlgo::Min, &pattern, 0.3, cfg).run();
    println!(
        "  sim @ 30% load: latency = {:.1} cycles, accepted = {:.2}, hops = {:.2}",
        res.avg_latency, res.accepted, res.avg_hops
    );

    // 5. What does it cost (§VI)?
    let cost = CostBreakdown::compute(&net, &CostModel::fdr10());
    println!(
        "  cost = ${:.0}/endpoint, power = {:.2} W/endpoint (paper: $1,033 and 8.02 W)",
        cost.cost_per_endpoint(),
        cost.power_per_endpoint()
    );
}
