//! Quickstart: build the paper's flagship Slim Fly from a declarative
//! spec, inspect its structure, route a packet, and run a load sweep
//! through the fluent experiment builder.
//!
//! Run with: `cargo run --release --example quickstart`

use slimfly::prelude::*;

fn main() -> Result<(), SfError> {
    // 1. The flagship network of §V as a declarative spec: q = 19 →
    //    722 routers, 10,830 endpoints, diameter 2, router radix 44.
    let spec: TopologySpec = "sf:q=19".parse()?;
    let net = spec.build()?;
    println!("network: {}", net.summary());

    // 2. Structural properties (§III).
    let diameter = metrics::diameter(&net.graph).unwrap();
    let avg = metrics::average_distance(&net.graph).unwrap();
    println!("  diameter = {diameter} (paper: 2)");
    println!("  average router distance = {avg:.3}");
    println!(
        "  average endpoint hops (uniform traffic) = {:.3}",
        average_hops_uniform(&net)
    );

    // 3. Minimal routing (§IV-A): route between two endpoints.
    let tables = RoutingTables::new(&net.graph);
    let gen = slimfly::routing::paths::PathGen::new(&net.graph, &tables);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let (src, dst) = (0u32, net.num_endpoints() as u32 - 1);
    let (rs, rd) = (net.endpoint_router(src), net.endpoint_router(dst));
    let path = gen.min_path(rs, rd, &mut rng);
    println!("  minimal route endpoint {src} -> {dst}: routers {path:?}");

    // 4. A short cycle-accurate load sweep at 30% uniform load (§V-A),
    //    through the experiment builder.
    let records = Experiment::on(spec)
        .routing(RouteAlgo::Min)
        .traffic(TrafficSpec::Uniform)
        .loads(&[0.3])
        .sim(SimConfig {
            warmup: 500,
            measure: 1_000,
            drain: 2_000,
            ..Default::default()
        })
        .run()?;
    let r = &records[0];
    println!(
        "  sim @ 30% load: latency = {:.1} cycles, accepted = {:.2}, hops = {:.2}",
        r.latency, r.accepted, r.avg_hops
    );
    println!("  as CSV:  {}", r.to_csv());
    println!("  as JSON: {}", r.to_json());

    // 5. What does it cost (§VI)?
    let cost = Experiment::on("sf:q=19").cost(&CostModel::fdr10())?;
    println!(
        "  cost = ${:.0}/endpoint, power = {:.2} W/endpoint (paper: $1,033 and 8.02 W)",
        cost.cost_per_endpoint(),
        cost.power_per_endpoint()
    );
    Ok(())
}
