//! Topology explorer: print the §VII-A "library of practical
//! topologies" — every balanced Slim Fly configuration up to a size
//! budget — and structural metrics for a chosen entry.
//!
//! Run with: `cargo run --release --example topology_explorer -- [max_endpoints]`

use slimfly::prelude::*;

fn main() -> Result<(), SfError> {
    let args = sf_bench::SweepArgs::parse();
    let max: u64 = args
        .positional(0)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);

    println!("balanced Slim Fly configurations with N ≤ {max}:");
    println!(
        "{:>10} {:>4} {:>3} {:>4} {:>4} {:>4} {:>7} {:>8}",
        "spec", "q", "δ", "k'", "p", "k", "Nr", "N"
    );
    let configs = zoo::balanced_slimflies_up_to(max);
    for c in &configs {
        println!(
            "{:>10} {:>4} {:>3} {:>4} {:>4} {:>4} {:>7} {:>8}",
            TopologySpec::slimfly(c.q).to_string(),
            c.q,
            c.delta,
            c.k_prime,
            c.p,
            c.k,
            c.nr,
            c.n
        );
    }
    println!(
        "{} variants ({} discounting the q=3 toy; paper §VII-A: 11) vs {} balanced Dragonflies (paper: 8)\n",
        configs.len(),
        configs.iter().filter(|c| c.q >= 4).count(),
        zoo::balanced_dragonflies_up_to(max).len()
    );

    // Deep-dive on the largest one that stays quick to analyze.
    if let Some(c) = configs.iter().find(|c| c.n >= 500) {
        let spec = TopologySpec::slimfly(c.q);
        let net = spec.build()?;
        println!("deep dive on {}:", net.summary());
        println!(
            "  diameter = {:?}, avg distance = {:.3}",
            metrics::diameter(&net.graph),
            metrics::average_distance(&net.graph).unwrap()
        );
        let weights: Vec<u64> = net.concentration.iter().map(|&c| c as u64).collect();
        let bis = partition::bisect_weighted(&net.graph, &weights, 8, 42, 0);
        println!(
            "  bisection ≈ {} links ({:.2}×N/2 at 10 Gb/s: {:.0} Gb/s)",
            bis.cut,
            bis.cut as f64 / (net.num_endpoints() as f64 / 2.0),
            bis.cut as f64 * 10.0
        );
        // The flow model through the same experiment API the benches use.
        let flow = Experiment::on(spec).flow()?;
        println!(
            "  analytic uniform saturation bound = {:.2} of full injection",
            flow.saturation_bound
        );
    }
    Ok(())
}
