//! Resiliency study (§III-D): how many random cable failures can a
//! Slim Fly take before it disconnects, its diameter inflates, or its
//! average path length degrades — compared against a Dragonfly.
//!
//! Run with: `cargo run --release --example resiliency_study`

use slimfly::graph::failure::{max_tolerable_fraction, FailureConfig, Property};
use slimfly::prelude::*;

fn main() -> Result<(), SfError> {
    let specs: Vec<TopologySpec> = vec!["sf:q=7".parse()?, "df:p=3".parse()?];
    let cfg = FailureConfig {
        min_samples: 16,
        max_samples: 48,
        ..Default::default()
    };

    println!(
        "{:<22} {:>12} {:>14} {:>16}",
        "network", "disconnect", "diameter(+2)", "avg-path(+1)"
    );
    for topo in &specs {
        let net = topo.build()?;
        let d0 = metrics::diameter(&net.graph).unwrap();
        let a0 = metrics::average_distance(&net.graph).unwrap();
        let f_conn = max_tolerable_fraction(&net.graph, Property::Connected, &cfg);
        let f_diam = max_tolerable_fraction(&net.graph, Property::DiameterAtMost(d0 + 2), &cfg);
        let f_path = max_tolerable_fraction(&net.graph, Property::AvgPathAtMost(a0 + 1.0), &cfg);
        println!(
            "{:<22} {:>11.0}% {:>13.0}% {:>15.0}%",
            net.name,
            f_conn * 100.0,
            f_diam * 100.0,
            f_path * 100.0
        );
    }
    println!(
        "\npaper (§III-D): SF tolerates more failures than DF on all three \
         metrics despite having fewer cables — its MMS graph is an expander \
         with 2q links between every rack pair instead of DF's single \
         inter-group cable."
    );
    Ok(())
}
