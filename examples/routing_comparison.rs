//! Routing-scheme shoot-out on a Slim Fly (§IV–§V): MIN, Valiant,
//! UGAL-L, UGAL-G and FatPaths-style layered multipath under benign
//! (uniform) and adversarial (worst-case) traffic, plus the
//! deadlock-freedom check of §IV-D.
//!
//! Every scheme is selected through the `RoutingSpec` string grammar —
//! the same strings work as `--routing` CLI flags on the bench binaries.
//!
//! Run with: `cargo run --release --example routing_comparison -- [q]`

use slimfly::prelude::*;
use slimfly::verify::{
    all_pairs_min_paths, hop_index_is_deadlock_free, layered_vc_count, vcs_required,
};

fn main() -> Result<(), SfError> {
    let args = sf_bench::SweepArgs::parse();
    let q: u32 = args.positional(0).and_then(|s| s.parse().ok()).unwrap_or(7);
    let spec = TopologySpec::slimfly(q);
    let net = spec.build()?;
    let sf = SlimFly::new(q)?;
    println!("network: {}", net.summary());

    // Deadlock freedom (§IV-D).
    let paths = all_pairs_min_paths(&net.graph, 1);
    println!(
        "deadlock: hop-index scheme needs {} VCs for minimal routing (acyclic: {}), \
         DFSSSP-style layering uses {} layers (paper: 2 VCs / ~3 layers)",
        vcs_required(&paths),
        hop_index_is_deadlock_free(&paths),
        layered_vc_count(&paths)
    );

    let cfg = SimConfig {
        warmup: 800,
        measure: 1_600,
        drain: 4_000,
        ..Default::default()
    };
    // The full scheme roster by spec string — `fatpaths:layers=3` is
    // the layered-multipath newcomer (Besta et al. 2020); everything
    // else matches the paper's Fig 6 legend.
    let schemes = [
        "min",
        "val",
        "ugal-l:c=4",
        "ugal-g:c=4",
        "fatpaths:layers=3",
    ];

    for (traffic, loads) in [
        (TrafficSpec::Uniform, vec![0.2, 0.5, 0.8]),
        (TrafficSpec::WorstCase, vec![0.05, 0.15, 0.3]),
    ] {
        println!("\ntraffic: {traffic}");
        println!(
            "{:>12} {:>8} {:>10} {:>10} {:>10}",
            "routing", "offered", "latency", "accepted", "hops"
        );
        let records = Experiment::on(spec.clone())
            .routing_strs(&schemes)
            .traffic(traffic)
            .loads(&loads)
            .sim(cfg)
            .run()?;
        for r in records {
            println!(
                "{:>12} {:>8.2} {:>10.1} {:>10.2} {:>10.2}{}",
                r.routing,
                r.offered,
                r.latency,
                r.accepted,
                r.avg_hops,
                if r.saturated { "  (saturated)" } else { "" }
            );
        }
    }
    println!(
        "\nexpected shape (paper Fig 6a/6d): MIN best on uniform; MIN collapses on \
         worst-case (~1/(p+1) = {:.2}) while VAL/UGAL recover to 40–45%",
        1.0 / (sf.balanced_concentration() as f64 + 1.0)
    );
    Ok(())
}
