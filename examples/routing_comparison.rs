//! Routing-algorithm shoot-out on a Slim Fly (§IV–§V): MIN, Valiant,
//! UGAL-L and UGAL-G under benign (uniform) and adversarial (worst-case)
//! traffic, plus the deadlock-freedom check of §IV-D.
//!
//! Run with: `cargo run --release --example routing_comparison -- [q]`

use slimfly::prelude::*;
use slimfly::routing::deadlock::{
    all_pairs_min_paths, hop_index_is_deadlock_free, layered_vc_count, vcs_required,
};

fn main() {
    let q: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let sf = SlimFly::new(q).expect("admissible q");
    let net = sf.network();
    let tables = RoutingTables::new(&net.graph);
    println!("network: {}", net.summary());

    // Deadlock freedom (§IV-D).
    let paths = all_pairs_min_paths(&net.graph, 1);
    println!(
        "deadlock: hop-index scheme needs {} VCs for minimal routing (acyclic: {}), \
         DFSSSP-style layering uses {} layers (paper: 2 VCs / ~3 layers)",
        vcs_required(&paths),
        hop_index_is_deadlock_free(&paths),
        layered_vc_count(&paths)
    );

    let cfg = SimConfig {
        warmup: 800,
        measure: 1_600,
        drain: 4_000,
        ..Default::default()
    };
    let algos = [
        RouteAlgo::Min,
        RouteAlgo::Valiant { cap3: false },
        RouteAlgo::UgalL { candidates: 4 },
        RouteAlgo::UgalG { candidates: 4 },
    ];

    for (label, loads) in [("uniform", vec![0.2, 0.5, 0.8]), ("worst-case", vec![0.05, 0.15, 0.3])] {
        println!("\ntraffic: {label}");
        println!("{:>8} {:>8} {:>10} {:>10} {:>10}", "routing", "offered", "latency", "accepted", "hops");
        let pattern = if label == "uniform" {
            TrafficPattern::uniform(net.num_endpoints() as u32)
        } else {
            TrafficPattern::worst_case_slimfly(&net, &tables)
        };
        for algo in algos {
            let results = LoadSweep::run(&net, &tables, algo, &pattern, &loads, cfg);
            for r in results {
                println!(
                    "{:>8} {:>8.2} {:>10.1} {:>10.2} {:>10.2}{}",
                    algo.label(),
                    r.offered_load,
                    r.avg_latency,
                    r.accepted,
                    r.avg_hops,
                    if r.saturated { "  (saturated)" } else { "" }
                );
            }
        }
    }
    println!(
        "\nexpected shape (paper Fig 6a/6d): MIN best on uniform; MIN collapses on \
         worst-case (~1/(p+1) = {:.2}) while VAL/UGAL recover to 40–45%",
        1.0 / (sf.balanced_concentration() as f64 + 1.0)
    );
}
