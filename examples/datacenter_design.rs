//! Datacenter design study: size a Slim Fly for a target machine,
//! compare against a Dragonfly of comparable size, and print the
//! physical layout and bill of materials (§VI of the paper).
//!
//! Run with: `cargo run --release --example datacenter_design -- [endpoints]`

use slimfly::cost::{CableInventory, Layout};
use slimfly::prelude::*;

fn main() -> Result<(), SfError> {
    let args = sf_bench::SweepArgs::parse();
    let target: u64 = args
        .positional(0)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);

    // Pick the smallest balanced Slim Fly covering the target.
    let cfg = zoo::recommend(target).expect("a config exists");
    println!(
        "recommended Slim Fly: q={} (δ={}) → Nr={}, N={}, k={} ports",
        cfg.q, cfg.delta, cfg.nr, cfg.n, cfg.k
    );
    let sf_spec = TopologySpec::slimfly(cfg.q);
    let net = sf_spec.build()?;

    // Physical layout (§VI-A).
    let layout = Layout::new(&net);
    let inv = CableInventory::new(&net, &layout);
    println!(
        "layout: {} racks ({} routers each), grid {} racks wide",
        layout.num_racks,
        net.num_routers() as u32 / layout.num_racks,
        layout.width
    );
    println!(
        "cables: {} electric (intra-rack), {} fiber (avg {:.1} m), {} endpoint links",
        inv.num_electric(),
        inv.num_fiber(),
        inv.avg_fiber_len(),
        inv.endpoint_cables
    );

    // Bill of materials under the three cable families (§VI-B).
    for model in [CostModel::fdr10(), CostModel::qdr56(), CostModel::sfp10()] {
        let b = CostBreakdown::compute(&net, &model);
        println!(
            "BOM [{}]: routers ${:.0}k + cables ${:.0}k = ${:.0}/endpoint",
            model.name,
            b.router_cost / 1e3,
            b.cable_cost / 1e3,
            b.cost_per_endpoint()
        );
    }

    // Balanced Dragonfly of comparable size (§VI-B4; the paper compares
    // against balanced DFs — unbalanced same-radix DFs found by raw
    // search can be far worse and overstate SF's advantage).
    let df_spec = TopologySpec::dragonfly_balanced(spec::dragonfly_p_near(cfg.n as usize));
    let model = CostModel::fdr10();
    let b_sf = CostBreakdown::compute(&net, &model);
    let b_df = Experiment::on(df_spec.clone()).cost(&model)?;
    println!(
        "vs Dragonfly {df_spec}: N={}, Nr={}, ${:.0}/endpoint, {:.2} W/endpoint",
        b_df.n,
        b_df.nr,
        b_df.cost_per_endpoint(),
        b_df.power_per_endpoint()
    );
    println!(
        "Slim Fly saves {:.0}% cost and {:.0}% power per endpoint (paper: ≈25% for both)",
        100.0 * (1.0 - b_sf.cost_per_endpoint() / b_df.cost_per_endpoint()),
        100.0 * (1.0 - b_sf.power_per_endpoint() / b_df.power_per_endpoint())
    );
    Ok(())
}
