//! Plan-level integration tests for the static verification tier:
//! `ExperimentPlan` → `JobSet::verify()` certificates, expansion-time
//! deadlock screening, and proven-deadlock rejection with a rendered
//! cycle witness — the same pass `sf-bench verify figures/*.toml` and
//! `sf-bench run` execute before any cycle is simulated.

use slimfly::plan::ExperimentPlan;
use slimfly::verify::{DeadlockStatus, VerifyError};
use slimfly::SfError;

#[test]
fn good_plan_certifies_every_combo() {
    let plan = ExperimentPlan::from_toml_str(
        "[figure]\nname = \"verify-good\"\n\
         [[sweep]]\ntopo = \"sf:q=5\"\nrouting = [\"min\", \"val\", \"ugal-l:c=4\"]\n\
         loads = [0.1]\n",
    )
    .unwrap();
    let mut set = plan.expand().unwrap();
    let certs = set.verify().unwrap();
    assert_eq!(certs.len(), 3, "one certificate per routing");
    for c in &certs {
        assert!(c.certified(), "{c}");
        assert_eq!(c.diameter, 2);
        assert!(
            matches!(c.status, DeadlockStatus::CdgAcyclic { clamped: false, .. }),
            "diameter-2 SF at 4 VCs never clamps: {c}"
        );
    }
    // The rendered certificate names the combo and the proof.
    let line = certs[0].to_string();
    assert!(
        line.contains("sf:q=5") && line.contains("deadlock-free"),
        "{line}"
    );
}

#[test]
fn single_vc_detour_plans_are_rejected_at_expansion() {
    // Valiant on one VC deadlocks on every topology with ≥ 3 routers
    // (the detour reverses a link at the intermediate) — the screen
    // rejects the plan before any network is even built.
    let plan = ExperimentPlan::from_toml_str(
        "[figure]\nname = \"verify-1vc\"\n\
         [[sweep]]\ntopo = \"sf:q=5\"\nrouting = [\"val\"]\nloads = [0.1]\n\
         [sweep.sim]\nnum_vcs = 1\n",
    )
    .unwrap();
    let err = plan
        .expand()
        .expect_err("1-VC Valiant must be screened out");
    match err {
        SfError::Verify(VerifyError::SpecDeadlock { num_vcs, .. }) => assert_eq!(num_vcs, 1),
        other => panic!("expected SfError::Verify(SpecDeadlock), got {other}"),
    }
}

#[test]
fn under_budgeted_ring_plan_fails_verify_with_witness() {
    // MIN on a large ring with one VC passes the topology-independent
    // screen but is a proven wormhole deadlock once the CDG is built:
    // verify() must fail with the offending channel cycle rendered.
    let plan = ExperimentPlan::from_toml_str(
        "[figure]\nname = \"verify-ring\"\n\
         [[sweep]]\ntopo = \"torus:dims=16\"\nrouting = [\"min\"]\nloads = [0.1]\n\
         [sweep.sim]\nnum_vcs = 1\n",
    )
    .unwrap();
    let mut set = plan.expand().unwrap();
    let err = set
        .verify()
        .expect_err("a 1-VC ring must fail verification");
    let SfError::Verify(VerifyError::Deadlock {
        ref witness,
        num_vcs,
        ..
    }) = err
    else {
        panic!("expected SfError::Verify(Deadlock), got {err}");
    };
    assert_eq!(num_vcs, 1);
    assert!(witness.len() >= 2);
    assert_eq!(witness.first(), witness.last(), "witness is a closed chain");
    let msg = err.to_string();
    assert!(
        msg.contains("vc0") && msg.contains("→"),
        "rendered error carries the channel cycle: {msg}"
    );
}

#[test]
fn flow_only_plans_verify_vacuously() {
    // Flow jobs have no VC/wormhole semantics; verify() must skip them
    // (and, per the pinned plan-layer behavior, never build tables).
    let plan = ExperimentPlan::from_toml_str(
        "[figure]\nname = \"verify-flow\"\n\
         [[sweep]]\ntopo = \"sf:q=5\"\nbackend = \"flow\"\nrouting = [\"min\"]\n\
         loads = [0.5]\n",
    )
    .unwrap();
    let mut set = plan.expand().unwrap();
    let certs = set.verify().unwrap();
    assert!(certs.is_empty(), "flow jobs yield no certificates");
}

#[test]
fn verified_plans_still_run() {
    // End to end: a verified plan simulates normally afterwards.
    let plan = ExperimentPlan::from_toml_str(
        "[figure]\nname = \"verify-run\"\n\
         [[sweep]]\ntopo = \"sf:q=5\"\nrouting = [\"min\"]\nloads = [0.1]\n\
         [sweep.sim]\nwarmup = 100\nmeasure = 200\ndrain = 400\n",
    )
    .unwrap();
    let mut set = plan.expand().unwrap();
    assert_eq!(set.verify().unwrap().len(), 1);
    let mut sink = slimfly::sink::MemorySink::new();
    slimfly::Scheduler::new(1).run(&mut set, &mut sink).unwrap();
    assert_eq!(sink.records().len(), 1);
}
