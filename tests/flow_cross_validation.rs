//! Cross-validation of the two evaluation tiers: the flow solver's
//! max-min saturation bound against the cycle engine's measured
//! accepted-throughput knee, on the same Hoffman–Singleton Slim Fly
//! grid (`figures/flow_compare.toml`) for MIN, VAL and UGAL.
//!
//! The fluid model ignores queueing, head-of-line blocking and
//! allocation conflicts, so its bound is an *upper* envelope of what
//! the flit engine delivers — the knee must never exceed it, and on
//! this topology it lands within 50% of it. Measured ratios
//! (flow bound / cycle knee) pinned by the golden report
//! `tests/golden/report_flow_compare.md`: MIN 1.27, VAL 1.17,
//! UGAL-L 1.38. Both backends are deterministic, so drift here means
//! a real model change, not noise.

use slimfly::plan::ExperimentPlan;
use slimfly::prelude::*;
use std::collections::BTreeMap;
use std::path::Path;

/// Max accepted throughput per (routing, backend) over the load sweep.
fn knees(records: &[Record]) -> BTreeMap<(String, String), f64> {
    let mut knee: BTreeMap<(String, String), f64> = BTreeMap::new();
    for r in records {
        let e = knee
            .entry((r.routing.clone(), r.backend.clone()))
            .or_insert(0.0);
        if r.accepted > *e {
            *e = r.accepted;
        }
    }
    knee
}

#[test]
fn flow_saturation_bound_brackets_cycle_knee() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let plan = ExperimentPlan::from_path(&root.join("figures/flow_compare.toml")).unwrap();
    let mut set = plan.expand().unwrap();
    let mut sink = MemorySink::new();
    Scheduler::new(1).run(&mut set, &mut sink).unwrap();
    let knee = knees(sink.records());

    let of = |routing: &str, backend: &str| -> f64 {
        *knee
            .get(&(routing.to_string(), backend.to_string()))
            .unwrap_or_else(|| panic!("no {backend} records for {routing}"))
    };

    for routing in ["MIN", "VAL", "UGAL-L"] {
        let cycle = of(routing, "cycle");
        let flow = of(routing, "flow");
        assert!(
            flow >= cycle * 0.98,
            "{routing}: flow bound {flow:.3} fell below the cycle knee {cycle:.3} — \
             the fluid model is an upper envelope and must not undercut the flit engine"
        );
        assert!(
            flow <= cycle * 1.5,
            "{routing}: flow bound {flow:.3} exceeds the cycle knee {cycle:.3} by more \
             than the documented 50% tolerance (measured ratios: MIN 1.27, VAL 1.17, \
             UGAL-L 1.38)"
        );
    }

    // The tiers must also agree on the routing *ordering*: Valiant halves
    // uniform throughput by doubling path length, so VAL sits below MIN in
    // both models.
    assert!(of("VAL", "cycle") < of("MIN", "cycle"));
    assert!(of("VAL", "flow") < of("MIN", "flow"));
}
