//! End-to-end coverage of the unified experiment API: a tiny but
//! complete experiment (spec string → builder → simulator → records →
//! serialization) plus the typed-error paths a config-file driver would
//! exercise.

use slimfly::prelude::*;

/// The acceptance scenario: `sf:q=5`, MIN routing, uniform traffic,
/// through `ExperimentBuilder`, yielding non-empty records.
#[test]
fn tiny_end_to_end_experiment() {
    let records = Experiment::on("sf:q=5")
        .routing(RouteAlgo::Min)
        .traffic(TrafficSpec::Uniform)
        .loads(&[0.1, 0.3])
        .sim(SimConfig {
            warmup: 200,
            measure: 500,
            drain: 1_500,
            ..Default::default()
        })
        .run()
        .expect("tiny experiment must run");

    assert!(!records.is_empty());
    assert_eq!(records.len(), 2);
    for r in &records {
        assert_eq!(r.spec, "sf:q=5");
        assert_eq!(r.routing, "MIN");
        assert_eq!(r.traffic, "uniform");
        assert!(r.accepted > 0.0, "packets must flow at {}", r.offered);
        assert!(r.latency.is_finite());
        assert!(r.avg_hops <= 2.0 + 1e-9, "MIN on diameter-2 SF");
        assert!(!r.saturated, "10–30% load cannot saturate a balanced SF");
    }
    // Low load is never slower than three times its own baseline — and
    // records come back in load order.
    assert!(records[0].offered < records[1].offered);
}

/// Records serialize to both CSV (with header) and JSON lines.
#[test]
fn records_serialize_to_csv_and_json() {
    let records = Experiment::on("sf:q=5")
        .loads(&[0.2])
        .sim(SimConfig {
            warmup: 150,
            measure: 300,
            drain: 1_000,
            ..Default::default()
        })
        .run()
        .unwrap();

    let mut csv = Vec::new();
    write_csv(&records, &mut csv).unwrap();
    let csv = String::from_utf8(csv).unwrap();
    assert!(csv.starts_with("topology,spec,routing,traffic,backend,packet_size,offered"));
    assert!(csv.contains("SF(q=5,p=4)"));

    let mut json = Vec::new();
    write_json_lines(&records, &mut json).unwrap();
    let line = String::from_utf8(json).unwrap();
    assert!(line.contains("\"routing\":\"MIN\""));
    assert!(line.contains("\"offered\":0.2"));
}

/// The same experiment value drives the analytic flow and cost models.
#[test]
fn one_spec_three_backends() {
    let exp = Experiment::on("sf:q=5").loads(&[0.2]).sim(SimConfig {
        warmup: 150,
        measure: 300,
        drain: 1_000,
        ..Default::default()
    });
    let sim = exp.run().unwrap();
    let flow = exp.flow().unwrap();
    let cost = exp.cost(&CostModel::fdr10()).unwrap();

    assert_eq!(flow.endpoints, 200);
    // Simulated hop count tracks the analytic expectation.
    assert!((sim[0].avg_hops - flow.avg_hops).abs() < 0.1);
    assert!(cost.total_cost() > 0.0);
}

/// Typed errors, not panics, on every user-facing failure path.
#[test]
fn error_paths_are_typed() {
    // Unknown family.
    assert!(matches!(
        "warp:q=9".parse::<TopologySpec>(),
        Err(SfError::ParseSpec { .. })
    ));
    // Admissibility failure surfaces from the builder.
    assert!(matches!(
        Experiment::on(TopologySpec::SlimFly { q: 6, p: None })
            .loads(&[0.1])
            .run(),
        Err(SfError::Topology(_))
    ));
    // Unknown traffic pattern name.
    assert!(matches!(
        "turbulence".parse::<TrafficSpec>(),
        Err(slimfly::TrafficError::UnknownPattern(_))
    ));
    // Worst-case traffic on a degenerate instance (DLN and BDF gained
    // adversaries, so only instances with no structure to exploit —
    // here a fully-connected 4-router DLN — still error).
    assert!(matches!(
        Experiment::on("dln:nr=4,y=2")
            .traffic(TrafficSpec::WorstCase)
            .loads(&[0.1])
            .run(),
        Err(SfError::Traffic(_))
    ));
    // Out-of-range load.
    assert!(matches!(
        Experiment::on("sf:q=5").loads(&[2.0]).run(),
        Err(SfError::Experiment(_))
    ));
}

/// Specs work as hash keys / config identifiers and build consistently
/// with direct constructor calls.
#[test]
fn spec_registry_matches_direct_constructors() {
    let via_spec = "sf:q=7".parse::<TopologySpec>().unwrap().build().unwrap();
    let direct = SlimFly::new(7).unwrap().network();
    assert_eq!(via_spec.num_routers(), direct.num_routers());
    assert_eq!(via_spec.num_endpoints(), direct.num_endpoints());
    assert_eq!(via_spec.graph.num_edges(), direct.graph.num_edges());

    let via_spec = "df:p=3".parse::<TopologySpec>().unwrap().build().unwrap();
    let direct = slimfly::topo::dragonfly::Dragonfly::balanced(3).network();
    assert_eq!(via_spec.num_endpoints(), direct.num_endpoints());
}
