//! Experiment-file ⇄ fluent-builder parity: the checked-in
//! `figures/*.toml` plans must reproduce, byte for byte, the record
//! streams of the equivalent hand-written [`Experiment`] builder
//! chains — the acceptance contract that whole paper figures really
//! are data, not binaries. Sweep sizes are shrunk (fewer loads, short
//! windows) so the suite stays seconds-fast; the shrink is applied
//! identically on both sides.

use slimfly::plan::ExperimentPlan;
use slimfly::prelude::*;
use std::path::Path;

fn repo_file(rel: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn csv_stream(records: &[Record]) -> String {
    records
        .iter()
        .map(|r| r.to_csv())
        .collect::<Vec<_>>()
        .join("\n")
}

fn quick_sim() -> SimConfig {
    SimConfig {
        warmup: 150,
        measure: 300,
        drain: 1_000,
        ..Default::default()
    }
}

/// Runs a plan through the work-stealing scheduler with several
/// workers, records in deterministic job order.
fn run_plan(plan: &ExperimentPlan, workers: usize) -> Vec<Record> {
    let mut set = plan.expand().unwrap();
    let mut sink = MemorySink::new();
    Scheduler::new(workers).run(&mut set, &mut sink).unwrap();
    sink.into_records()
}

#[test]
fn fig8_toml_is_byte_identical_to_the_builder_path() {
    // The Fig 8 experiment file, shrunk for test runtime: first
    // (uniform, worst) sweep pair on the balanced concentration,
    // three loads each, short windows.
    let mut plan = ExperimentPlan::from_path(&repo_file("figures/fig8.toml")).unwrap();
    assert_eq!(plan.name, "fig8");
    plan.sweeps.truncate(2);
    for sweep in &mut plan.sweeps {
        sweep.loads.truncate(3);
        sweep.sim = quick_sim();
    }
    let from_file = run_plan(&plan, 4);

    // The same sweeps as fluent-builder chains, hand-written to mirror
    // figures/fig8.toml (not derived from the parsed plan).
    let routings = [
        RoutingSpec::Min,
        RoutingSpec::Valiant { cap3: false },
        RoutingSpec::UgalL { candidates: 4 },
        RoutingSpec::UgalG { candidates: 4 },
    ];
    let mut from_builder = Vec::new();
    for (traffic, loads) in [
        (TrafficSpec::Uniform, vec![0.1, 0.25, 0.5]),
        (TrafficSpec::WorstCase, vec![0.05, 0.1, 0.2]),
    ] {
        from_builder.extend(
            Experiment::on("sf:q=7,p=6")
                .routings(&routings)
                .traffic(traffic)
                .loads(&loads)
                .sim(quick_sim())
                .run()
                .unwrap(),
        );
    }
    assert_eq!(from_file.len(), from_builder.len());
    assert_eq!(csv_stream(&from_file), csv_stream(&from_builder));
}

#[test]
fn smoke_toml_runs_end_to_end_and_workers_do_not_change_records() {
    let plan = ExperimentPlan::from_path(&repo_file("figures/smoke.toml")).unwrap();
    let seq = run_plan(&plan, 1);
    let par = run_plan(&plan, 4);
    assert_eq!(seq.len(), plan.expand().unwrap().num_records());
    assert_eq!(csv_stream(&seq), csv_stream(&par));
}

#[test]
fn fig_packets_toml_expands_the_matrix_and_is_worker_invariant() {
    // The multi-flit figure: one sweep template with `packet_sizes =
    // [1, 4, 16]` must expand into three sweeps, run end to end on the
    // scheduler, stream byte-identically for any worker count, and
    // show the serialization ordering (latency strictly increasing in
    // packet size at the same low offered flit load).
    let mut plan = ExperimentPlan::from_path(&repo_file("figures/fig_packets.toml")).unwrap();
    assert_eq!(plan.name, "fig_packets");
    assert_eq!(plan.sweeps.len(), 3, "packet_sizes = [1, 4, 16]");
    assert_eq!(
        plan.sweeps
            .iter()
            .map(|s| s.sim.packet_size)
            .collect::<Vec<_>>(),
        vec![1, 4, 16]
    );
    // Shrink for test runtime: one load, short windows, MIN only.
    for sweep in &mut plan.sweeps {
        sweep.loads = vec![0.2];
        sweep.routings.truncate(1);
        sweep.sim = SimConfig {
            packet_size: sweep.sim.packet_size,
            ..quick_sim()
        };
    }
    let seq = run_plan(&plan, 1);
    let par = run_plan(&plan, 4);
    assert_eq!(csv_stream(&seq), csv_stream(&par));
    assert_eq!(seq.len(), 3);
    assert_eq!(
        seq.iter().map(|r| r.packet_size).collect::<Vec<_>>(),
        vec![1, 4, 16]
    );
    assert!(
        seq[0].latency < seq[1].latency && seq[1].latency < seq[2].latency,
        "serialization latency must grow with packet size: {} / {} / {}",
        seq[0].latency,
        seq[1].latency,
        seq[2].latency
    );
}

#[test]
fn every_checked_in_figure_file_parses_and_expands() {
    let dir = repo_file("figures");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("toml") {
            continue;
        }
        let plan =
            ExperimentPlan::from_path(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let set = plan
            .expand()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(!set.jobs().is_empty(), "{}", path.display());
        seen += 1;
    }
    assert!(seen >= 4, "expected the four checked-in figure files");
}

#[test]
fn warm_start_flag_changes_only_non_first_chain_loads() {
    // Parity pin for the warm-start default: the flag off must leave
    // records exactly as the cold path produces them, and on it must
    // keep the first load of each chain bit-identical.
    let base = ExperimentPlan::from_toml_str(
        r#"
        [figure]
        name = "warm"
        [[sweep]]
        topo = "sf:q=5"
        routing = ["min"]
        loads = [0.1, 0.3]
        [sweep.sim]
        warmup = 150
        measure = 300
        drain = 1000
        "#,
    )
    .unwrap();
    let mut warm = base.clone();
    warm.sweeps[0].warm_start = true;

    let cold_records = run_plan(&base, 2);
    let builder_records = Experiment::on("sf:q=5")
        .routing(RoutingSpec::Min)
        .loads(&[0.1, 0.3])
        .sim(quick_sim())
        .run()
        .unwrap();
    assert_eq!(
        csv_stream(&cold_records),
        csv_stream(&builder_records),
        "warm_start = false (the default) must stay bit-identical to the builder path"
    );

    let warm_records = run_plan(&warm, 2);
    assert_eq!(warm_records.len(), 2);
    assert_eq!(
        warm_records[0].to_csv(),
        cold_records[0].to_csv(),
        "first load of a warm chain starts cold"
    );
    assert!(warm_records[1].accepted > 0.0);
}
