//! Golden-file test for the report generator: the markdown rendered
//! from the deterministic `figures/smoke.toml` record stream must
//! match `tests/golden/report_smoke.md` byte for byte. The simulation
//! is seeded and the scheduler output order is defined, so the
//! rendered report is stable across machines and worker counts.
//!
//! Regenerate after intentional changes (new columns, changed smoke
//! sweep) with:  `SF_BLESS=1 cargo test --test report_golden`

use slimfly::plan::ExperimentPlan;
use slimfly::prelude::*;
use slimfly::report::render_plan_report;
use std::path::Path;

#[test]
fn report_matches_golden_file() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let plan = ExperimentPlan::from_path(&root.join("figures/smoke.toml")).unwrap();
    let mut set = plan.expand().unwrap();
    let mut sink = MemorySink::new();
    Scheduler::new(1).run(&mut set, &mut sink).unwrap();
    let got = render_plan_report(&plan, sink.records());

    let golden = root.join("tests/golden/report_smoke.md");
    if std::env::var_os("SF_BLESS").is_some() {
        std::fs::create_dir_all(golden.parent().unwrap()).unwrap();
        std::fs::write(&golden, &got).unwrap();
        return;
    }
    let want =
        std::fs::read_to_string(&golden).expect("golden file missing — regenerate with SF_BLESS=1");
    assert_eq!(
        got, want,
        "report drifted from tests/golden/report_smoke.md; if intentional, \
         regenerate with SF_BLESS=1 cargo test --test report_golden"
    );
}

/// The flow-vs-cycle comparison report: `figures/flow_compare.toml`
/// runs the same sf:q=5 grid through both backends, and the rendered
/// report — per-backend latency/throughput sections plus the "Flow vs
/// cycle saturation" table — must match the golden file byte for
/// byte. The cycle engine is seeded and the flow solver is
/// deterministic, so the table's knee/bound ratios are stable; this
/// is the pinned form of the cross-validation EXPERIMENTS.md shows.
#[test]
fn flow_compare_report_matches_golden_file() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let plan = ExperimentPlan::from_path(&root.join("figures/flow_compare.toml")).unwrap();
    let mut set = plan.expand().unwrap();
    let mut sink = MemorySink::new();
    Scheduler::new(1).run(&mut set, &mut sink).unwrap();
    let got = render_plan_report(&plan, sink.records());

    let golden = root.join("tests/golden/report_flow_compare.md");
    if std::env::var_os("SF_BLESS").is_some() {
        std::fs::create_dir_all(golden.parent().unwrap()).unwrap();
        std::fs::write(&golden, &got).unwrap();
        return;
    }
    let want =
        std::fs::read_to_string(&golden).expect("golden file missing — regenerate with SF_BLESS=1");
    assert_eq!(
        got, want,
        "report drifted from tests/golden/report_flow_compare.md; if intentional, \
         regenerate with SF_BLESS=1 cargo test --test report_golden"
    );
}
