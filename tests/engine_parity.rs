//! Engine-parity regression suite for the pluggable-routing refactor,
//! the multi-flit wormhole refactor and the sharded-engine refactor.
//!
//! The routing policies used to live as `match` arms inside the
//! simulator core; they are now `sf_routing::Router` trait impls behind
//! the engine's `QueueView` window. MIN / VAL / UGAL latency-vs-load
//! curves on `sf:q=5` must reproduce the values captured below (the
//! tolerances absorb only future benign engine changes, not behavioral
//! drift), and the paper's Fig 6 qualitative result — worst-case
//! traffic crushes MIN but not UGAL — must keep holding end to end.
//!
//! **Shard-RNG re-pin.** The sharded-engine refactor replaced the
//! single global RNG stream with one splitmix64-derived stream per
//! shard, keyed on `(seed, shard_id)`, so results are a pure function
//! of `(plan, seed)` independent of the thread count. The draw
//! *sequence* necessarily differs from the single-stream engine, so
//! every table below was re-captured from the sharded engine at
//! `threads = 1` in the same commit that introduced the sharding; the
//! statistical identity of old and new curves was checked against the
//! pre-shard captures (every cell within the stated tolerances except
//! the deep-saturation VAL@0.5 point, which moved 200.0 → 226.9 —
//! saturated-region latency is seed-sensitive by nature). These pins
//! now freeze the per-shard draw order: any engine change that
//! perturbs it fails these tests.
//!
//! The wormhole refactor is held to a stricter bar: at
//! `packet_size = 1` every flit is its own head and tail, no VC
//! reservation outlives its grant, and the engine must be **bit
//! identical** to the pre-wormhole single-flit engine — the
//! [`PRE_WORMHOLE_6DP`] table pins every (routing, load) cell to six
//! decimals (the capture precision), including the per-hop adaptive
//! curve whose `next_hop`/occupancy sequence is the most fragile. A
//! `packet_size = 4` curve ([`WORMHOLE_PKT4_6DP`]) is pinned alongside:
//! it demonstrates (and freezes) the serialization physics — higher
//! zero-load latency by the S − 1 tail, earlier saturation, MIN/UGAL
//! separation widening under wormhole head-of-line blocking.

use slimfly::prelude::*;

fn parity_cfg() -> SimConfig {
    SimConfig {
        warmup: 400,
        measure: 800,
        drain: 2_500,
        ..Default::default()
    }
}

/// (routing label, offered load, avg latency, accepted throughput)
/// with `parity_cfg()` on `sf:q=5`, uniform traffic. Originally
/// captured from the pre-refactor engine (closed `RouteAlgo` enum);
/// re-captured at the shard-RNG transition (see the module docs).
const PRE_REFACTOR_UNIFORM: &[(&str, f64, f64, f64)] = &[
    ("MIN", 0.1, 7.449740, 0.099900),
    ("MIN", 0.3, 7.901346, 0.300856),
    ("MIN", 0.5, 8.850728, 0.502019),
    ("VAL", 0.1, 14.952432, 0.100013),
    ("VAL", 0.3, 17.492678, 0.298506),
    ("VAL", 0.5, 226.904661, 0.405137),
    ("UGAL-L", 0.1, 8.485680, 0.100081),
    ("UGAL-L", 0.3, 9.554195, 0.300787),
    ("UGAL-L", 0.5, 10.408192, 0.499213),
    ("UGAL-G", 0.1, 9.711958, 0.101069),
    ("UGAL-G", 0.3, 9.471102, 0.301794),
    ("UGAL-G", 0.5, 10.083277, 0.500437),
];

/// The per-hop adaptive curve, captured from the pre-CSR-refactor
/// engine with `parity_cfg()` on `sf:q=5`, uniform traffic. ANCA draws
/// no injection-path RNG of its own but consults live queue occupancy
/// at *every hop*, so this curve pins two things the flat-engine
/// refactor must not perturb: the exact `next_hop` call sequence under
/// active-set skipping, and the exact occupancy values the incremental
/// counters report.
const PRE_REFACTOR_ECMP: &[(&str, f64, f64, f64)] = &[
    ("ANCA", 0.1, 7.443795, 0.099488),
    ("ANCA", 0.3, 7.896367, 0.300406),
    ("ANCA", 0.5, 8.883771, 0.500100),
];

/// (routing label, offered load, avg latency, accepted, avg hops)
/// with `parity_cfg()` on `sf:q=5`, uniform traffic, to six decimals.
/// Originally captured from the single-flit engine immediately
/// **before** the wormhole refactor (the wormhole code path must
/// degenerate *exactly* at `packet_size = 1`); re-captured from the
/// sharded engine at `threads = 1` at the shard-RNG transition (see
/// the module docs). The six-decimal bar is unchanged: same per-shard
/// RNG call sequence, same occupancy values, bit-identical results.
const PRE_WORMHOLE_6DP: &[(&str, f64, f64, f64, f64)] = &[
    ("MIN", 0.1, 7.449740, 0.099900, 1.825766),
    ("MIN", 0.3, 7.901346, 0.300856, 1.826623),
    ("MIN", 0.5, 8.850728, 0.502019, 1.825945),
    ("VAL", 0.1, 14.952432, 0.100013, 3.619202),
    ("VAL", 0.3, 17.492678, 0.298506, 3.626862),
    ("VAL", 0.5, 226.904661, 0.405137, 3.623079),
    ("UGAL-L", 0.1, 8.485680, 0.100081, 2.078867),
    ("UGAL-L", 0.3, 9.554195, 0.300787, 2.198216),
    ("UGAL-L", 0.5, 10.408192, 0.499213, 2.156267),
    ("UGAL-G", 0.1, 9.711958, 0.101069, 2.372430),
    ("UGAL-G", 0.3, 9.471102, 0.301794, 2.175996),
    ("UGAL-G", 0.5, 10.083277, 0.500437, 2.070972),
    ("ANCA", 0.1, 7.443795, 0.099488, 1.825475),
    ("ANCA", 0.3, 7.896367, 0.300406, 1.828526),
    ("ANCA", 0.5, 8.883771, 0.500100, 1.830318),
];

/// Six-decimal equality: the capture precision of the pinned tables.
/// Any drift here means the wormhole path did NOT degenerate exactly.
fn assert_6dp(got: f64, want: f64, what: &str) {
    assert!(
        (got - want).abs() < 1e-6,
        "{what}: {got} drifted from the pinned {want} (must match to 6 decimals)"
    );
}

#[test]
fn packet_size_1_is_bit_identical_to_the_pre_wormhole_engine() {
    let records = Experiment::on("sf:q=5")
        .routing_strs(&["min", "val", "ugal-l:c=4", "ugal-g:c=4", "ecmp"])
        .loads(&[0.1, 0.3, 0.5])
        .sim(parity_cfg())
        .run()
        .unwrap();
    assert_eq!(records.len(), PRE_WORMHOLE_6DP.len());
    for (r, &(label, offered, latency, accepted, hops)) in records.iter().zip(PRE_WORMHOLE_6DP) {
        assert_eq!(r.routing, label);
        assert_eq!(r.offered, offered);
        assert_eq!(r.packet_size, 1);
        assert_6dp(r.latency, latency, &format!("{label}@{offered} latency"));
        assert_6dp(r.accepted, accepted, &format!("{label}@{offered} accepted"));
        assert_6dp(r.avg_hops, hops, &format!("{label}@{offered} hops"));
    }
}

/// (routing label, offered flit load, avg latency, accepted) from the
/// wormhole engine at `packet_size = 4`, `parity_cfg()` on `sf:q=5`,
/// uniform traffic, to six decimals; re-captured at the shard-RNG
/// transition (see the module docs). Pinned so future engine work
/// cannot silently change the multi-flit physics.
const WORMHOLE_PKT4_6DP: &[(&str, f64, f64, f64)] = &[
    ("MIN", 0.1, 11.234356, 0.100544),
    ("MIN", 0.3, 14.372947, 0.302719),
    ("MIN", 0.5, 21.349385, 0.500719),
    ("MIN", 0.7, 105.177386, 0.643275),
    ("UGAL-L", 0.1, 12.504274, 0.099300),
    ("UGAL-L", 0.3, 18.391374, 0.298131),
    ("UGAL-L", 0.5, 33.741044, 0.500375),
    ("UGAL-L", 0.7, 266.778239, 0.539813),
];

#[test]
fn packet_size_4_curve_shows_serialization_and_is_pinned() {
    let records = Experiment::on("sf:q=5")
        .routing_strs(&["min", "ugal-l:c=4"])
        .loads(&[0.1, 0.3, 0.5, 0.7])
        .sim(parity_cfg())
        .packet_size(4)
        .run()
        .unwrap();
    assert_eq!(records.len(), WORMHOLE_PKT4_6DP.len());
    for (r, &(label, offered, latency, accepted)) in records.iter().zip(WORMHOLE_PKT4_6DP) {
        assert_eq!(r.routing, label);
        assert_eq!(r.offered, offered);
        assert_eq!(r.packet_size, 4);
        assert_6dp(
            r.latency,
            latency,
            &format!("{label}@{offered} pkt4 latency"),
        );
        assert_6dp(
            r.accepted,
            accepted,
            &format!("{label}@{offered} pkt4 accepted"),
        );
    }
    // Serialization physics versus the pinned single-flit curves:
    // higher zero-load latency (the 3-flit tail), and earlier
    // saturation at the same offered *flit* load.
    let pkt4 = |label: &str, load: f64| {
        WORMHOLE_PKT4_6DP
            .iter()
            .find(|&&(l, o, ..)| l == label && o == load)
            .unwrap()
    };
    let flit1 = |label: &str, load: f64| {
        PRE_WORMHOLE_6DP
            .iter()
            .find(|&&(l, o, ..)| l == label && o == load)
            .unwrap()
    };
    for label in ["MIN", "UGAL-L"] {
        let (_, _, lat4, _) = pkt4(label, 0.1);
        let (_, _, lat1, _, _) = flit1(label, 0.1);
        assert!(
            *lat4 > lat1 + 3.0,
            "{label}: size-4 zero-load latency {lat4} must exceed size-1 {lat1} by ≥ 3 cycles"
        );
    }
    // At 70% offered the single-flit engine still accepts ~0.70 (see
    // the capture runs); the wormhole run tops out well below — MIN at
    // ~0.65 and UGAL-L, whose detours occupy VCs for whole packets, at
    // ~0.54: the MIN/UGAL separation under serialization.
    let (_, _, _, acc_min) = pkt4("MIN", 0.7);
    let (_, _, _, acc_ugal) = pkt4("UGAL-L", 0.7);
    assert!(*acc_min < 0.68, "MIN pkt4 saturates earlier: {acc_min}");
    assert!(
        *acc_ugal < *acc_min,
        "UGAL-L pays more for wormhole detours: {acc_ugal} vs MIN {acc_min}"
    );
}

#[test]
fn min_val_ugal_curves_match_pre_refactor_values() {
    let records = Experiment::on("sf:q=5")
        .routing_strs(&["min", "val", "ugal-l:c=4", "ugal-g:c=4"])
        .loads(&[0.1, 0.3, 0.5])
        .sim(parity_cfg())
        .run()
        .unwrap();
    assert_eq!(records.len(), PRE_REFACTOR_UNIFORM.len());
    for (r, &(label, offered, latency, accepted)) in records.iter().zip(PRE_REFACTOR_UNIFORM) {
        assert_eq!(r.routing, label);
        assert_eq!(r.offered, offered);
        let lat_tol = latency * 0.10;
        assert!(
            (r.latency - latency).abs() <= lat_tol,
            "{label}@{offered}: latency {} drifted from pre-refactor {latency}",
            r.latency
        );
        let acc_tol = (accepted * 0.05).max(0.01);
        assert!(
            (r.accepted - accepted).abs() <= acc_tol,
            "{label}@{offered}: accepted {} drifted from pre-refactor {accepted}",
            r.accepted
        );
    }
}

#[test]
fn ecmp_per_hop_curve_matches_pre_refactor_values() {
    let records = Experiment::on("sf:q=5")
        .routing_str("ecmp")
        .loads(&[0.1, 0.3, 0.5])
        .sim(parity_cfg())
        .run()
        .unwrap();
    assert_eq!(records.len(), PRE_REFACTOR_ECMP.len());
    for (r, &(label, offered, latency, accepted)) in records.iter().zip(PRE_REFACTOR_ECMP) {
        assert_eq!(r.routing, label);
        assert_eq!(r.offered, offered);
        assert!(
            (r.latency - latency).abs() <= latency * 0.10,
            "{label}@{offered}: latency {} drifted from pre-refactor {latency}",
            r.latency
        );
        assert!(
            (r.accepted - accepted).abs() <= (accepted * 0.05).max(0.01),
            "{label}@{offered}: accepted {} drifted from pre-refactor {accepted}",
            r.accepted
        );
    }
}

#[test]
fn fig6_worst_case_crushes_min_but_not_ugal() {
    // Pre-refactor capture at offered 0.3, worst-case traffic:
    //   MIN    latency ≈ 830.6, accepted ≈ 0.150, saturated
    //   UGAL-L latency ≈  14.1, accepted ≈ 0.301, not saturated
    let records = Experiment::on("sf:q=5")
        .routing_strs(&["min", "ugal-l:c=4"])
        .traffic(TrafficSpec::WorstCase)
        .loads(&[0.3])
        .sim(parity_cfg())
        .run()
        .unwrap();
    let (min, ugal) = (&records[0], &records[1]);
    assert_eq!(min.routing, "MIN");
    assert_eq!(ugal.routing, "UGAL-L");
    assert!(
        min.saturated && min.accepted < 0.2,
        "MIN must collapse under the Fig 9 adversary: accepted {}",
        min.accepted
    );
    assert!(
        !ugal.saturated && ugal.accepted > 0.28,
        "UGAL-L must sustain adversarial load: accepted {}",
        ugal.accepted
    );
    assert!(
        (min.accepted - 0.150438).abs() < 0.02,
        "MIN accepted {} drifted from pre-refactor capture",
        min.accepted
    );
    assert!(
        (ugal.accepted - 0.300712).abs() < 0.02,
        "UGAL-L accepted {} drifted from pre-refactor capture",
        ugal.accepted
    );
}

/// The acceptance scenario for the pluggable engine: routing selected
/// purely by spec string — including the genuinely new FatPaths scheme
/// — runs end to end through the fluent builder.
#[test]
fn routing_str_and_fatpaths_run_end_to_end() {
    let quick = SimConfig {
        warmup: 200,
        measure: 400,
        drain: 1_200,
        ..Default::default()
    };
    let records = Experiment::on("sf:q=5")
        .routing_str("ugal-l:c=4")
        .routing_str("fatpaths:layers=3")
        .loads(&[0.2])
        .sim(quick)
        .run()
        .unwrap();
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].routing, "UGAL-L");
    assert_eq!(records[1].routing, "FatPaths-3");
    for r in &records {
        assert!(!r.saturated, "{} at 20% must drain", r.routing);
        assert!(r.accepted > 0.15, "{} accepted {}", r.routing, r.accepted);
    }
    // FatPaths spreads over degraded layers: some detours, bounded hops.
    assert!(records[1].avg_hops > records[0].avg_hops * 0.9);
    assert!(records[1].avg_hops <= 9.0);
}

/// The literal acceptance expressions on the paper-size network resolve
/// to valid routers and a buildable topology (the full q=19 sweep is
/// exercised by the bench binaries; here we verify resolution cheaply).
#[test]
fn acceptance_expressions_resolve_on_q19() {
    let exp = Experiment::on("sf:q=19").routing_str("ugal-l:c=4");
    assert_eq!(
        exp.routing_specs().unwrap(),
        vec![RoutingSpec::UgalL { candidates: 4 }]
    );
    assert_eq!(exp.build_network().unwrap().num_endpoints(), 10_830);
    let exp = Experiment::on("sf:q=19").routing_str("fatpaths:layers=3");
    assert_eq!(
        exp.routing_specs().unwrap(),
        vec![RoutingSpec::FatPaths { layers: 3 }]
    );
}

/// FatPaths layered multipath holds up under the Slim Fly worst-case
/// adversary far better than MIN: path layers steer flows off the
/// colliding minimal links (the FatPaths design claim).
#[test]
fn fatpaths_beats_min_under_worst_case() {
    let records = Experiment::on("sf:q=5")
        .routing_strs(&["min", "fatpaths:layers=4"])
        .traffic(TrafficSpec::WorstCase)
        .loads(&[0.25])
        .sim(parity_cfg())
        .run()
        .unwrap();
    let (min, fp) = (&records[0], &records[1]);
    assert!(
        fp.accepted > min.accepted,
        "FatPaths {} must beat MIN {} under adversarial traffic",
        fp.accepted,
        min.accepted
    );
}
