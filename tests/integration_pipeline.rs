//! End-to-end integration tests spanning every crate: build a topology,
//! route on it, simulate it, break it, and price it — the full pipeline
//! a user of the library runs.

use slimfly::graph::failure::{max_tolerable_fraction, FailureConfig, Property};
use slimfly::prelude::*;

/// The complete §V pipeline on a small Slim Fly: construct → analyze →
/// route → simulate, checking the paper's qualitative claims end to end.
#[test]
fn full_pipeline_slimfly_q5() {
    let sf = SlimFly::new(5).unwrap();
    let net = sf.network();

    // §II-B: structure.
    assert_eq!(net.num_routers(), 50);
    assert_eq!(net.num_endpoints(), 200);
    assert_eq!(metrics::diameter(&net.graph), Some(2));

    // §IV: routing tables and deadlock-free minimal routing.
    let tables = RoutingTables::new(&net.graph);
    assert_eq!(tables.max_distance(), 2);
    let paths = slimfly::verify::all_pairs_min_paths(&net.graph, 9);
    assert!(slimfly::verify::hop_index_is_deadlock_free(&paths));

    // §V: simulate uniform traffic at moderate load.
    let pattern = TrafficPattern::uniform(net.num_endpoints() as u32);
    let cfg = SimConfig {
        warmup: 400,
        measure: 800,
        drain: 2_000,
        ..Default::default()
    };
    let res = Simulator::new(&net, &tables, &MinRouter, &pattern, 0.4, cfg).run();
    assert!(!res.saturated, "balanced SF at 40% must not saturate");
    assert!(res.avg_hops <= 2.0 + 1e-9);

    // §VI: the network has a finite, positive price.
    let bom = CostBreakdown::compute(&net, &CostModel::fdr10());
    assert!(bom.total_cost() > 0.0);
    assert!(bom.power_per_endpoint() > 0.0);
}

/// §V head-to-head: Slim Fly must beat Dragonfly on zero-load latency
/// (diameter 2 vs 3) under uniform traffic with each network's paper
/// routing.
#[test]
fn slimfly_latency_beats_dragonfly() {
    let sf_net = SlimFly::new(7).unwrap().network();
    let df_net = slimfly::topo::dragonfly::Dragonfly::balanced(3).network();
    let cfg = SimConfig {
        warmup: 500,
        measure: 1_000,
        drain: 3_000,
        ..Default::default()
    };
    let sf_tables = RoutingTables::new(&sf_net.graph);
    let df_tables = RoutingTables::new(&df_net.graph);
    let sf_pat = TrafficPattern::uniform(sf_net.num_endpoints() as u32);
    let df_pat = TrafficPattern::uniform(df_net.num_endpoints() as u32);
    let sf_res = Simulator::new(&sf_net, &sf_tables, &MinRouter, &sf_pat, 0.2, cfg).run();
    let df_ugal = UgalRouter::new(4, false).unwrap();
    let df_res = Simulator::new(&df_net, &df_tables, &df_ugal, &df_pat, 0.2, cfg).run();
    assert!(
        sf_res.avg_latency < df_res.avg_latency,
        "SF-MIN {:.1} must beat DF-UGAL-L {:.1} at low load",
        sf_res.avg_latency,
        df_res.avg_latency
    );
    assert!(sf_res.avg_hops < df_res.avg_hops);
}

/// §III-D: Slim Fly tolerates at least as many random link failures as
/// a comparable Dragonfly before disconnecting.
#[test]
fn slimfly_resiliency_at_least_dragonfly() {
    let sf = SlimFly::new(7).unwrap().network();
    let df = slimfly::topo::dragonfly::Dragonfly::balanced(3).network();
    let cfg = FailureConfig {
        min_samples: 12,
        max_samples: 24,
        ..Default::default()
    };
    let f_sf = max_tolerable_fraction(&sf.graph, Property::Connected, &cfg);
    let f_df = max_tolerable_fraction(&df.graph, Property::Connected, &cfg);
    assert!(
        f_sf + 1e-9 >= f_df,
        "SF {f_sf} must be at least as resilient as DF {f_df}"
    );
    assert!(f_sf >= 0.40, "SF should tolerate ≥40% removal, got {f_sf}");
}

/// §VI: the cost ordering of Table IV holds end to end — SF cheapest
/// per endpoint among the high-radix group, low-radix networks far
/// more expensive.
#[test]
fn cost_ordering_matches_table_iv() {
    let model = CostModel::fdr10();
    let sf = CostBreakdown::compute(&SlimFly::new(11).unwrap().network(), &model);
    let df = CostBreakdown::compute(
        &slimfly::topo::dragonfly::Dragonfly::balanced(6).network(),
        &model,
    );
    let hc = CostBreakdown::compute(
        &slimfly::topo::hypercube::Hypercube::new(11).network(),
        &model,
    );
    assert!(sf.cost_per_endpoint() < df.cost_per_endpoint());
    assert!(df.cost_per_endpoint() < hc.cost_per_endpoint());
    assert!(sf.power_per_endpoint() < df.power_per_endpoint());
}

/// The worst-case traffic generator must actually hurt MIN routing on
/// SF while UGAL-L recovers — the central claim of §V-C.
#[test]
fn worst_case_traffic_end_to_end() {
    let sf = SlimFly::new(5).unwrap();
    let net = sf.network();
    let tables = RoutingTables::new(&net.graph);
    let pattern = TrafficPattern::worst_case_slimfly(&net, &tables);
    let cfg = SimConfig {
        warmup: 500,
        measure: 1_000,
        drain: 3_000,
        ..Default::default()
    };
    let offered = 0.35;
    let min = Simulator::new(&net, &tables, &MinRouter, &pattern, offered, cfg).run();
    let ugal_router = UgalRouter::new(4, false).unwrap();
    let ugal = Simulator::new(&net, &tables, &ugal_router, &pattern, offered, cfg).run();
    assert!(
        min.accepted < offered * 0.8,
        "MIN must not sustain adversarial load: accepted {}",
        min.accepted
    );
    assert!(
        ugal.accepted > min.accepted,
        "UGAL-L {} must beat MIN {} under adversarial traffic",
        ugal.accepted,
        min.accepted
    );
}

/// Oversubscription (§V-E): accepted uniform bandwidth degrades
/// gracefully as p grows past the balanced point.
#[test]
fn oversubscription_degrades_gracefully() {
    let sf = SlimFly::new(5).unwrap();
    let p0 = sf.balanced_concentration();
    let cfg = SimConfig {
        warmup: 500,
        measure: 1_000,
        drain: 2_500,
        ..Default::default()
    };
    let mut accepted = Vec::new();
    for p in [p0, p0 + 1, p0 + 3] {
        let net = sf.network_with_concentration(p);
        let tables = RoutingTables::new(&net.graph);
        let pattern = TrafficPattern::uniform(net.num_endpoints() as u32);
        let res = Simulator::new(&net, &tables, &MinRouter, &pattern, 0.95, cfg).run();
        accepted.push(res.accepted);
    }
    assert!(
        accepted[0] > accepted[2],
        "balanced must outperform heavy oversubscription: {accepted:?}"
    );
}

/// Zoo + flow model consistency: every practical configuration has a
/// near-1 analytic saturation bound (the meaning of "balanced").
#[test]
fn zoo_configs_are_balanced_by_flow_model() {
    for c in zoo::balanced_slimflies_up_to(1_500) {
        if c.q < 5 {
            continue; // toy sizes
        }
        let net = c.build().network();
        let sat = uniform_channel_loads(&net).saturation_bound();
        assert!(
            sat > 0.65,
            "q={} saturation bound {sat} too low for a balanced config",
            c.q
        );
    }
}
