//! Smoke tests for every experiment pipeline (E1–E18 in EXPERIMENTS.md):
//! tiny versions of each bench binary's computation, asserting the
//! paper's qualitative claim each artifact exists to demonstrate.

use slimfly::graph::{metrics, partition, spectral};
use slimfly::prelude::*;
use slimfly::topo::dragonfly::Dragonfly;
use slimfly::topo::fattree::FatTree3;
use slimfly::topo::hypercube::Hypercube;
use slimfly::topo::moore::moore_bound;
use slimfly::topo::torus::Torus;

/// E1 / Fig 1: SF has the fewest average hops of the roster.
#[test]
fn e1_avg_hops_ordering() {
    let sf = SlimFly::new(7).unwrap().network();
    let df = Dragonfly::balanced(3).network();
    let ft = FatTree3 { p: 8, full: false }.network();
    let t3 = Torus::cubic_3d(512).network();
    let h_sf = average_hops_uniform(&sf);
    let h_df = average_hops_uniform(&df);
    let h_ft = average_hops_uniform(&ft);
    let h_t3 = average_hops_uniform(&t3);
    assert!(
        h_sf < h_df && h_df < h_ft && h_ft < h_t3,
        "SF {h_sf} < DF {h_df} < FT {h_ft} < T3D {h_t3}"
    );
    assert!(h_sf < 2.0);
}

/// E2 / Fig 5a: the headline Moore-bound data point.
#[test]
fn e2_moore2_headline() {
    let sf = SlimFly::new(64).unwrap();
    assert_eq!(sf.network_radix(), 96);
    assert_eq!(sf.num_routers(), 8192);
    assert_eq!(moore_bound(96, 2), 9217);
}

/// E3 / Fig 5b: DEL > BDF > DF > FBF-3 as fractions of MB(k',3).
#[test]
fn e3_moore3_ordering() {
    use slimfly::topo::bdf::bdf_routers;
    use slimfly::topo::delorme::{del_network_radix, del_routers};
    let frac_del = del_routers(9) as f64 / moore_bound(del_network_radix(9), 3) as f64;
    let frac_bdf = bdf_routers(96) as f64 / moore_bound(96, 3) as f64;
    let df = Dragonfly::balanced(24); // k' = h + a − 1 = 71
    let kp = (df.h + df.a - 1) as u64;
    let frac_df = df.num_routers() as f64 / moore_bound(kp, 3) as f64;
    let frac_fbf = (25u64 * 25 * 25) as f64 / moore_bound(72, 3) as f64;
    assert!(
        frac_del > frac_bdf && frac_bdf > frac_df && frac_df > frac_fbf,
        "DEL {frac_del} > BDF {frac_bdf} > DF {frac_df} > FBF {frac_fbf}"
    );
}

/// E4 / Fig 5c: SF bisection above DF's N/4 class, HC at N/2.
#[test]
fn e4_bisection_ordering() {
    let sf = SlimFly::new(5).unwrap().network();
    let w: Vec<u64> = sf.concentration.iter().map(|&c| c as u64).collect();
    let cut = partition::bisect_weighted(&sf.graph, &w, 8, 1, 0).cut;
    let n = sf.num_endpoints();
    assert!(
        cut * 2 > n / 4,
        "SF bisection {cut} links > N/4 = {} class",
        n / 4
    );
    let hc = Hypercube::new(8).router_graph();
    let side: Vec<bool> = (0..256).map(|v| v & 128 != 0).collect();
    assert_eq!(partition::cut_size(&hc, &side), 128);
}

/// E5 / Table II handled by per-crate tests; re-assert SF here.
#[test]
fn e5_diameter_two() {
    for q in [5u32, 8, 9, 11] {
        let g = SlimFly::new(q).unwrap().router_graph();
        assert_eq!(metrics::diameter(&g), Some(2));
    }
}

/// E16 / §IV-D: 2 VCs for minimal SF routing, acyclic CDG.
#[test]
fn e16_vc_counts() {
    use slimfly::verify::*;
    let g = SlimFly::new(5).unwrap().router_graph();
    let paths = all_pairs_min_paths(&g, 5);
    assert_eq!(vcs_required(&paths), 2);
    assert!(hop_index_is_deadlock_free(&paths));
    assert!(layered_vc_count(&paths) <= 4);
}

/// E17 / §VII-A zoo counts.
#[test]
fn e17_zoo_counts() {
    assert_eq!(zoo::balanced_slimflies_up_to(20_000).len(), 12);
    assert_eq!(zoo::balanced_dragonflies_up_to(20_000).len(), 8);
}

/// E18 / §IX: SF is the best expander of the regular roster.
#[test]
fn e18_expander_ordering() {
    let sf = spectral::spectral_gap(&SlimFly::new(5).unwrap().router_graph(), 300, 1);
    let hc = spectral::spectral_gap(&Hypercube::new(6).router_graph(), 300, 1);
    let t3 = spectral::spectral_gap(&Torus::new(vec![4, 4, 4]).router_graph(), 300, 1);
    assert!(sf.normalized() < 0.5, "SF(q=5) λ₂/d = {}", sf.normalized());
    assert!(sf.normalized() < t3.normalized());
    assert!(t3.normalized() <= hc.normalized() + 1e-9);
    // The Hoffman–Singleton adjacency spectrum is {7, 2, −3}: the
    // two-sided second eigenvalue is exactly 3.
    assert!((sf.lambda2 - 3.0).abs() < 0.05);
}

/// §VII-C: incremental growth — analytic accepted fractions match the
/// paper's 87.5% / 80% / 75% trio at q = 19.
#[test]
fn e11_expansion_accepted_fractions() {
    let sf = SlimFly::new(19).unwrap();
    let curve = slimfly::expansion::growth_curve(&sf, 18);
    let by_p = |p: u32| curve.iter().find(|s| s.p == p).unwrap().saturation;
    // The paper's trio are *simulated* accepted fractions; the fluid
    // bound sits slightly above them (the simulator pays allocator
    // overheads). p=15 matches to three digits; p=16/18 within ~3%.
    assert!((by_p(15) - 0.875).abs() < 0.01, "p=15: {}", by_p(15));
    assert!((by_p(16) - 0.80).abs() < 0.03, "p=16: {}", by_p(16));
    assert!((by_p(18) - 0.75).abs() < 0.05, "p=18: {}", by_p(18));
}

/// §VII-A: random-shortcut augmentation improves distances.
#[test]
fn e_aug_random_shortcuts() {
    use slimfly::topo::augment::add_random_shortcuts;
    let net = SlimFly::new(7).unwrap().network();
    let aug = add_random_shortcuts(&net, 5, 3);
    assert!(
        metrics::average_distance(&aug.graph).unwrap()
            < metrics::average_distance(&net.graph).unwrap()
    );
}

/// §III-D: maximal path diversity — k' edge-disjoint paths everywhere.
#[test]
fn e_diversity_maximal() {
    use slimfly::routing::diversity::diversity_stats;
    let sf = SlimFly::new(5).unwrap();
    let (avg, min) = diversity_stats(&sf.router_graph(), 16);
    assert_eq!(min, sf.network_radix());
    assert!((avg - sf.network_radix() as f64).abs() < 1e-9);
}
