//! End-to-end contract of the content-addressed result cache
//! (`slimfly::cache`) through the scheduler: warm (all-hit) runs of
//! the checked-in figure files must reproduce the cold run's CSV and
//! rendered report **byte for byte**, corrupted entries must degrade
//! to re-simulation (never wrong output), worker/thread counts must
//! share one entry per job, and an incremental resubmission must
//! simulate exactly the delta.

use slimfly::cache::ResultCache;
use slimfly::plan::ExperimentPlan;
use slimfly::report::render_plan_report;
use slimfly::schedule::{ScheduleReport, Scheduler};
use slimfly::sink::MemorySink;
use slimfly::Record;
use std::path::{Path, PathBuf};

fn repo_file(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn fresh_cache(tag: &str) -> ResultCache {
    let dir = std::env::temp_dir().join(format!("sf-cachetest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    ResultCache::open(dir).unwrap()
}

/// Runs `plan` through the scheduler, returning the report and the
/// record stream; `cache`/`workers`/`threads` parameterize the run.
fn run_plan(
    plan: &ExperimentPlan,
    cache: Option<&ResultCache>,
    workers: usize,
    threads: usize,
) -> (ScheduleReport, Vec<Record>) {
    let mut set = plan.expand().unwrap();
    set.override_threads(threads);
    let mut sink = MemorySink::new();
    let report = Scheduler::new(workers)
        .with_cache(cache.cloned())
        .run(&mut set, &mut sink)
        .unwrap();
    (report, sink.into_records())
}

fn csv_of(records: &[Record]) -> String {
    let mut out = String::from(Record::CSV_HEADER);
    for r in records {
        out.push('\n');
        out.push_str(&r.to_csv());
    }
    out
}

#[test]
fn warm_runs_of_checked_in_figures_are_all_hit_and_byte_identical() {
    for (file, tag) in [
        ("figures/smoke.toml", "smoke"),
        ("figures/fig_faults_quick.toml", "faults"),
    ] {
        let plan = ExperimentPlan::from_path(&repo_file(file)).unwrap();
        let cache = fresh_cache(tag);
        let (cold_rep, cold) = run_plan(&plan, Some(&cache), 1, 0);
        assert_eq!(cold_rep.cache_hits, 0, "{file}: fresh cache cannot hit");
        assert_eq!(cold_rep.cache_misses, cold_rep.jobs);
        assert_eq!(cold_rep.cache_store_errors, 0);

        let (warm_rep, warm) = run_plan(&plan, Some(&cache), 1, 0);
        assert_eq!(
            warm_rep.cache_hits, warm_rep.jobs,
            "{file}: warm run must all-hit"
        );
        assert_eq!(warm_rep.cache_misses, 0);

        // CSV and rendered report, byte for byte.
        assert_eq!(csv_of(&cold), csv_of(&warm), "{file}: CSV must match");
        assert_eq!(
            render_plan_report(&plan, &cold),
            render_plan_report(&plan, &warm),
            "{file}: rendered report must match"
        );
        let _ = std::fs::remove_dir_all(cache.root());
    }
}

#[test]
fn worker_and_thread_counts_share_one_entry_per_job() {
    // PR 9's invariant made load-bearing: results are independent of
    // engine threads and scheduler workers, so the cache key excludes
    // both — a sweep run at threads=1/workers=1 must serve (all-hit)
    // the same sweep at threads ∈ {2, 8} and workers ∈ {1, 4}.
    let plan = ExperimentPlan::from_path(&repo_file("figures/smoke.toml")).unwrap();
    let cache = fresh_cache("tw");
    let (_, baseline) = run_plan(&plan, Some(&cache), 1, 1);
    for (workers, threads) in [(1, 2), (4, 8), (4, 1)] {
        let (rep, records) = run_plan(&plan, Some(&cache), workers, threads);
        assert_eq!(
            (rep.cache_hits, rep.cache_misses),
            (rep.jobs, 0),
            "workers={workers} threads={threads} must be all-hit"
        );
        assert_eq!(
            csv_of(&baseline),
            csv_of(&records),
            "workers={workers} threads={threads}"
        );
    }
    let _ = std::fs::remove_dir_all(cache.root());
}

#[test]
fn corrupted_entry_is_detected_and_resimulated() {
    let plan = ExperimentPlan::from_path(&repo_file("figures/smoke.toml")).unwrap();
    let cache = fresh_cache("corrupt");
    let (cold_rep, cold) = run_plan(&plan, Some(&cache), 1, 0);
    assert_eq!(cold_rep.cache_misses, cold_rep.jobs);

    // Bit-flip one stored entry and truncate another: both must fail
    // the per-entry checksum and degrade to misses.
    let mut entries: Vec<PathBuf> = std::fs::read_dir(cache.root())
        .unwrap()
        .map(|d| d.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "sfrec"))
        .collect();
    entries.sort();
    assert_eq!(entries.len(), cold_rep.jobs);
    let mut flipped = std::fs::read(&entries[0]).unwrap();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    std::fs::write(&entries[0], &flipped).unwrap();
    let truncated = std::fs::read(&entries[1]).unwrap();
    std::fs::write(&entries[1], &truncated[..truncated.len() / 3]).unwrap();

    let (rerun_rep, rerun) = run_plan(&plan, Some(&cache), 1, 0);
    assert_eq!(
        (rerun_rep.cache_hits, rerun_rep.cache_misses),
        (rerun_rep.jobs - 2, 2),
        "exactly the two damaged entries must re-simulate"
    );
    assert_eq!(
        csv_of(&cold),
        csv_of(&rerun),
        "re-simulation must repair output"
    );

    // The write-through overwrote the damaged entries: third run is
    // clean.
    let (healed_rep, _) = run_plan(&plan, Some(&cache), 1, 0);
    assert_eq!(healed_rep.cache_misses, 0);
    let _ = std::fs::remove_dir_all(cache.root());
}

#[test]
fn delta_resubmission_simulates_only_the_new_jobs() {
    let base = ExperimentPlan::from_path(&repo_file("figures/smoke.toml")).unwrap();
    let cache = fresh_cache("delta");
    let (base_rep, _) = run_plan(&base, Some(&cache), 1, 0);
    assert_eq!(base_rep.cache_misses, base_rep.jobs);

    // The iteration loop the cache exists for: one new load point on
    // the first sweep. Every pre-existing (topo, routing, load) cell
    // keeps its key — only the new cells (one per routing of that
    // sweep) may simulate.
    let mut extended = base.clone();
    extended.sweeps[0].loads.push(0.45);
    let new_jobs = extended.sweeps[0].routings.len() * extended.sweeps[0].topos.len();
    let (delta_rep, merged) = run_plan(&extended, Some(&cache), 1, 0);
    assert_eq!(delta_rep.jobs, base_rep.jobs + new_jobs);
    assert_eq!(
        (delta_rep.cache_hits, delta_rep.cache_misses),
        (base_rep.jobs, new_jobs),
        "exactly the delta must simulate"
    );

    // And the merged (hit + fresh) stream equals a cache-free cold run
    // of the extended plan, byte for byte.
    let (_, cold) = run_plan(&extended, None, 1, 0);
    assert_eq!(csv_of(&cold), csv_of(&merged));
    let _ = std::fs::remove_dir_all(cache.root());
}
