//! Workspace umbrella crate: re-exports the `slimfly` facade for the
//! examples in `examples/` and the cross-crate integration tests in
//! `tests/`. Library users should depend on the `slimfly` crate
//! directly.

pub use slimfly;
